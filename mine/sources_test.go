package mine

import (
	"math/rand"
	"strings"
	"testing"

	"dbtrules/arm"
	"dbtrules/codegen"
	"dbtrules/corpus"
	"dbtrules/learn"
	"dbtrules/rules"
	"dbtrules/x86"
)

func compiledPair(t testing.TB, name string) learn.Pair {
	t.Helper()
	b, ok := corpus.ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %q", name)
	}
	g, h, err := b.Compile(codegen.Options{Style: codegen.StyleLLVM, OptLevel: 2})
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	return learn.Pair{Name: b.Name, Guest: g, Host: h}
}

// wholeBinaryHot marks every guest instruction hot so the window source
// explores the whole program.
func wholeBinaryHot(p *learn.Pair) []HotPC {
	return []HotPC{{Pair: p.Name, PC: 0, Len: len(p.Guest.Code), Weight: 1}}
}

func TestHotWindowProposalsWellFormed(t *testing.T) {
	p := compiledPair(t, "mcf")
	src := &HotWindowSource{}
	ctx := &Context{Pairs: []learn.Pair{p}, Hot: wholeBinaryHot(&p)}
	props := src.Propose(ctx, 200)
	if len(props) == 0 {
		t.Fatal("no hot-window proposals over the whole binary")
	}
	if len(props) > 200 {
		t.Fatalf("budget exceeded: %d proposals", len(props))
	}
	for _, c := range props {
		if !strings.HasPrefix(c.Source, "mine:hot:") {
			t.Fatalf("proposal source %q lacks mine:hot: prefix", c.Source)
		}
		if len(c.GuestVars) != len(c.Guest) || len(c.HostVars) != len(c.Host) {
			t.Fatalf("%s: vars not aligned with code", c.Source)
		}
		// The source must not waste verifier budget on shapes learn's
		// preparation rejects outright.
		for i, in := range c.Guest {
			switch in.Op {
			case arm.BL, arm.BX, arm.PUSH, arm.POP:
				t.Fatalf("%s: unlearnable guest op %v proposed", c.Source, in.Op)
			}
			if in.Predicated() {
				t.Fatalf("%s: predicated guest instruction proposed", c.Source)
			}
			if in.Op == arm.B && (in.Cond == arm.AL || i != len(c.Guest)-1) {
				t.Fatalf("%s: illegal branch placement proposed", c.Source)
			}
		}
		for i, in := range c.Host {
			switch in.Op {
			case x86.CALL, x86.RET, x86.PUSH, x86.POP, x86.JMP:
				t.Fatalf("%s: unlearnable host op %v proposed", c.Source, in.Op)
			}
			if in.Op == x86.JCC && i != len(c.Host)-1 {
				t.Fatalf("%s: interior host jump proposed", c.Source)
			}
		}
		gEndsBr := c.Guest[len(c.Guest)-1].Op == arm.B
		hEndsBr := c.Host[len(c.Host)-1].Op == x86.JCC
		if gEndsBr != hEndsBr {
			t.Fatalf("%s: branch-discipline mismatch", c.Source)
		}
		gl, gs := guestAccessCounts(c.Guest)
		hl, hs := hostAccessCounts(c.Host)
		if gl != hl || gs != hs {
			t.Fatalf("%s: memory shape mismatch (%d/%d vs %d/%d)", c.Source, gl, gs, hl, hs)
		}
	}
}

func TestHotWindowBudgetZero(t *testing.T) {
	p := compiledPair(t, "mcf")
	src := &HotWindowSource{}
	ctx := &Context{Pairs: []learn.Pair{p}, Hot: wholeBinaryHot(&p)}
	if props := src.Propose(ctx, 0); len(props) != 0 {
		t.Fatalf("budget 0 produced %d proposals", len(props))
	}
	if props := src.Propose(ctx, 1); len(props) > 1 {
		t.Fatalf("budget 1 produced %d proposals", len(props))
	}
}

func TestHotWindowSkipsUnknownPair(t *testing.T) {
	p := compiledPair(t, "mcf")
	src := &HotWindowSource{}
	ctx := &Context{Pairs: []learn.Pair{p}, Hot: []HotPC{{Pair: "nonesuch", PC: 0, Len: 8, Weight: 1}}}
	if props := src.Propose(ctx, 16); len(props) != 0 {
		t.Fatalf("unknown pair produced %d proposals", len(props))
	}
}

func testRule(t testing.TB, id int, guest []string, host []string) *rules.Rule {
	t.Helper()
	return &rules.Rule{ID: id, Guest: mustArm(t, guest...), Host: mustX86(t, host...)}
}

func TestRecombineProposals(t *testing.T) {
	// Rule 1: 2-host-instruction body; rule 2: same memory shape (none),
	// 1 host instruction. Recombination should try rule 1's guest with
	// rule 2's host (shorter), never the reverse.
	r1 := testRule(t, 1,
		[]string{"add r0, r0, r1", "add r0, r0, r1"},
		[]string{"addl %ecx, %eax", "addl %ecx, %eax"})
	r2 := testRule(t, 2,
		[]string{"eor r0, r0, r1"},
		[]string{"xorl %ecx, %eax"})
	store := rules.NewStore()
	if added, _ := store.AddAll([]*rules.Rule{r1, r2}); added != 2 {
		t.Fatal("store refused test rules")
	}
	src := &RecombineSource{}
	props := src.Propose(&Context{Store: store}, 16)
	if len(props) != 1 {
		t.Fatalf("got %d proposals, want 1", len(props))
	}
	c := props[0]
	if c.Source != "mine:recomb:1<-2" {
		t.Fatalf("source = %q", c.Source)
	}
	if arm.Seq(c.Guest) != arm.Seq(r1.Guest) || x86.Seq(c.Host) != x86.Seq(r2.Host) {
		t.Fatal("recombined candidate is not guest(r1) + host(r2)")
	}
}

func TestRecombineShapeFilter(t *testing.T) {
	// A store-load pattern must never be paired with a pure-ALU body:
	// the memory shapes differ, so the pairing is a guaranteed reject.
	r1 := testRule(t, 1,
		[]string{"ldr r0, [r1]", "add r0, r0, #1"},
		[]string{"movl (%ecx), %eax", "addl $1, %eax"})
	r2 := testRule(t, 2,
		[]string{"mov r0, #0"},
		[]string{"movl $0, %eax"})
	store := rules.NewStore()
	store.AddAll([]*rules.Rule{r1, r2})
	src := &RecombineSource{}
	for _, c := range src.Propose(&Context{Store: store}, 16) {
		gl, gs := guestAccessCounts(c.Guest)
		hl, hs := hostAccessCounts(c.Host)
		if gl != hl || gs != hs {
			t.Fatalf("%s: shape-mismatched recombination proposed", c.Source)
		}
	}
}

func TestSuperblockRespectsLineBounds(t *testing.T) {
	p := compiledPair(t, "mcf")
	src := &SuperblockSource{MinLines: 2, MaxLines: 3}
	props := src.Propose(&Context{Pairs: []learn.Pair{p}}, 500)
	if len(props) == 0 {
		t.Fatal("no superblock proposals on mcf")
	}
	for _, c := range props {
		if !strings.HasPrefix(c.Source, "mine:super:") {
			t.Fatalf("source %q lacks mine:super: prefix", c.Source)
		}
		if k := combinedLines(c.Source); k < 2 || k > 3 {
			t.Fatalf("%s: %d combined lines outside [2, 3]", c.Source, k)
		}
	}
}

func TestSortHotDeterministic(t *testing.T) {
	base := []HotPC{
		{Pair: "a", PC: 3, Weight: 10},
		{Pair: "a", PC: 1, Weight: 10},
		{Pair: "b", PC: 1, Weight: 10},
		{Pair: "a", PC: 2, Weight: 99},
		{Pair: "a", PC: 9, Weight: 1},
	}
	rng := rand.New(rand.NewSource(7))
	var want []HotPC
	for trial := 0; trial < 10; trial++ {
		got := append([]HotPC(nil), base...)
		rng.Shuffle(len(got), func(i, j int) { got[i], got[j] = got[j], got[i] })
		sortHot(got)
		if trial == 0 {
			want = got
			if want[0].Weight != 99 {
				t.Fatalf("hottest first: got weight %d", want[0].Weight)
			}
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("shuffle %d produced different order at %d: %+v vs %+v", trial, i, got[i], want[i])
			}
		}
	}
}
