package mine

import (
	"strings"
	"testing"

	"dbtrules/arm"
	"dbtrules/learn"
	"dbtrules/x86"
)

func mustArm(t testing.TB, lines ...string) []arm.Instr {
	t.Helper()
	var out []arm.Instr
	for _, l := range lines {
		in, err := arm.Parse(l)
		if err != nil {
			t.Fatalf("arm.Parse(%q): %v", l, err)
		}
		out = append(out, in)
	}
	return out
}

func mustX86(t testing.TB, lines ...string) []x86.Instr {
	t.Helper()
	var out []x86.Instr
	for _, l := range lines {
		in, err := x86.Parse(l)
		if err != nil {
			t.Fatalf("x86.Parse(%q): %v", l, err)
		}
		out = append(out, in)
	}
	return out
}

func testCandidate(t testing.TB) learn.Candidate {
	return learn.Candidate{
		Source:    "test",
		Guest:     mustArm(t, "ldr r0, [r1]", "add r0, r0, #1"),
		Host:      mustX86(t, "movl (%ecx), %eax", "addl $1, %eax"),
		GuestVars: []string{"v", ""},
		HostVars:  []string{"v", ""},
	}
}

func TestCandidateKeyStable(t *testing.T) {
	a, b := testCandidate(t), testCandidate(t)
	if CandidateKey(&a) != CandidateKey(&b) {
		t.Fatal("identical candidates produced different keys")
	}
	// Source and Line are provenance, not identity: two sources proposing
	// the same code must collapse to one verification.
	b.Source, b.Line = "elsewhere", 99
	if CandidateKey(&a) != CandidateKey(&b) {
		t.Fatal("Source/Line changed the candidate key")
	}
}

func TestCandidateKeyDistinguishes(t *testing.T) {
	base := testCandidate(t)
	mutations := map[string]func(*learn.Candidate){
		"guest op":    func(c *learn.Candidate) { c.Guest = mustArm(t, "ldr r0, [r1]", "add r0, r0, #2") },
		"guest trunc": func(c *learn.Candidate) { c.Guest = c.Guest[:1]; c.GuestVars = c.GuestVars[:1] },
		"host op":     func(c *learn.Candidate) { c.Host = mustX86(t, "movl (%ecx), %eax", "addl $2, %eax") },
		"host trunc":  func(c *learn.Candidate) { c.Host = c.Host[:1]; c.HostVars = c.HostVars[:1] },
		"guest var":   func(c *learn.Candidate) { c.GuestVars = []string{"w", ""} },
		"host var":    func(c *learn.Candidate) { c.HostVars = []string{"w", ""} },
	}
	for name, mutate := range mutations {
		c := testCandidate(t)
		mutate(&c)
		if CandidateKey(&base) == CandidateKey(&c) {
			t.Errorf("%s mutation did not change the key", name)
		}
	}
}

// TestCandidateKeyVarBoundaries pins the length-prefix encoding: moving
// a character across a variable-name boundary must change the key, or
// two different pairings would share one verification verdict.
func TestCandidateKeyVarBoundaries(t *testing.T) {
	a, b := testCandidate(t), testCandidate(t)
	a.GuestVars = []string{"ab", ""}
	b.GuestVars = []string{"a", "b"}
	if CandidateKey(&a) == CandidateKey(&b) {
		t.Fatal(`vars {"ab",""} and {"a","b"} share a key`)
	}
}

func TestDedupAdmit(t *testing.T) {
	d := NewDedup()
	c := testCandidate(t)
	k := CandidateKey(&c)
	if !d.Admit(k) {
		t.Fatal("first admission refused")
	}
	for i := 0; i < 3; i++ {
		if d.Admit(k) {
			t.Fatal("duplicate admitted")
		}
	}
	if got, want := d.Submitted(), uint64(1); got != want {
		t.Errorf("Submitted = %d, want %d", got, want)
	}
	if got, want := d.Duplicates(), uint64(3); got != want {
		t.Errorf("Duplicates = %d, want %d", got, want)
	}
	if d.Len() != 1 {
		t.Errorf("Len = %d, want 1", d.Len())
	}
}

// stubSource replays a fixed proposal list every round, like a source
// whose inputs did not change, following the source discipline of
// skipping seen candidates before spending budget.
type stubSource struct {
	name  string
	props []learn.Candidate
}

func (s *stubSource) Name() string { return s.name }
func (s *stubSource) Propose(ctx *Context, budget int) []learn.Candidate {
	var out []learn.Candidate
	for i := range s.props {
		if len(out) >= budget {
			break
		}
		if ctx.Seen(&s.props[i]) {
			continue
		}
		out = append(out, s.props[i])
	}
	return out
}

// rawStubSource ignores Context.Seen and replays its full list every
// round — the worst-behaved source the dedup front must contain.
type rawStubSource struct {
	props []learn.Candidate
}

func (s *rawStubSource) Name() string { return "raw-stub" }
func (s *rawStubSource) Propose(ctx *Context, budget int) []learn.Candidate {
	if budget > len(s.props) {
		budget = len(s.props)
	}
	return s.props[:budget]
}

// junkCandidates builds n distinct candidates that parse but can never
// verify (guest stores, host does arithmetic only — a memory-shape
// mismatch the learner rejects immediately).
func junkCandidates(t testing.TB, n int) []learn.Candidate {
	out := make([]learn.Candidate, 0, n)
	for i := 0; i < n; i++ {
		c := learn.Candidate{
			Source:    "junk",
			Guest:     mustArm(t, "str r0, [r1]", "add r2, r2, #"+itoa(i)),
			Host:      mustX86(t, "addl $1, %eax"),
			GuestVars: []string{"v", ""},
			HostVars:  []string{""},
		}
		out = append(out, c)
	}
	return out
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

// TestDedupNeverResubmits is the subsystem's core guarantee: a candidate
// the verifier rejected is never handed to the verifier again, counted
// on the miner's own submit counter across rounds of identical
// proposals.
func TestDedupNeverResubmits(t *testing.T) {
	src := &stubSource{name: "stub", props: junkCandidates(t, 10)}
	m := NewMiner(nil, &Options{Sources: []Source{src}, Budget: 64})
	// The miner must not need a store for rounds that verify nothing.
	st1 := m.Round(&Context{})
	if st1.Submitted != 10 || st1.Verified != 0 {
		t.Fatalf("round 1: submitted %d verified %d, want 10 and 0", st1.Submitted, st1.Verified)
	}
	after1 := m.VerifierSubmits()
	st2 := m.Round(&Context{})
	if st2.Submitted != 0 {
		t.Fatalf("round 2 resubmitted %d rejected candidates", st2.Submitted)
	}
	if got := m.VerifierSubmits(); got != after1 {
		t.Fatalf("verifier submit counter moved %d -> %d across a round of known-rejected proposals", after1, got)
	}
	if sub, _ := m.DedupStats(); sub != 10 {
		t.Fatalf("DedupStats submitted = %d, want 10", sub)
	}
	// A source that ignores Context.Seen still cannot force a
	// resubmission: Admit is the backstop.
	raw := &rawStubSource{props: junkCandidates(t, 10)}
	m2 := NewMiner(nil, &Options{Sources: []Source{raw}, Budget: 64})
	m2.Round(&Context{})
	after := m2.VerifierSubmits()
	st := m2.Round(&Context{})
	if st.Submitted != 0 || st.Duplicates != 10 {
		t.Fatalf("raw source round 2: submitted %d duplicates %d, want 0 and 10", st.Submitted, st.Duplicates)
	}
	if got := m2.VerifierSubmits(); got != after {
		t.Fatalf("verifier submit counter moved %d -> %d across pure duplicates", after, got)
	}
}

// TestOverBudgetRetried: proposals dropped for budget are not marked
// seen, so the next round picks them up.
func TestOverBudgetRetried(t *testing.T) {
	src := &stubSource{name: "stub", props: junkCandidates(t, 10)}
	m := NewMiner(nil, &Options{Sources: []Source{src}, Budget: 4})
	if st := m.Round(&Context{}); st.Submitted != 4 {
		t.Fatalf("round 1 submitted %d, want 4 (budget)", st.Submitted)
	}
	// The stub replays the same list; the 4 seen ones are skipped via
	// Context.Seen and the next 4 unseen ones get their turn.
	st := m.Round(&Context{})
	if st.Submitted != 4 {
		t.Fatalf("round 2 submitted %d, want 4", st.Submitted)
	}
	if st3 := m.Round(&Context{}); st3.Submitted != 2 {
		t.Fatalf("round 3 submitted %d, want the final 2", st3.Submitted)
	}
}

func TestMinedIDSpace(t *testing.T) {
	if IsMinedID(1) || IsMinedID(MineIDBase-1) {
		t.Fatal("line-paired IDs classified as mined")
	}
	if !IsMinedID(MineIDBase) || !IsMinedID(MineIDBase+12345) {
		t.Fatal("mined IDs not classified as mined")
	}
}

// FuzzMineCandidateKey drives the dedup key with adversarial component
// splits: the key must be injective over (guest, host, guest vars, host
// vars) — a collision between structurally different candidates would
// let one candidate's verdict silently stand in for another's.
func FuzzMineCandidateKey(f *testing.F) {
	f.Add("add r0, r1, #1", "addl $1, %eax", "v", "v", uint8(0))
	f.Add("ldr r0, [r1]", "movl (%ecx), %eax", "ab", "a", uint8(1))
	f.Add("str r0, [r1]", "movl %eax, (%ecx)", "", "x\ng1:y", uint8(2))
	f.Fuzz(func(t *testing.T, gasm, hasm, gvar, hvar string, mut uint8) {
		gi, err := arm.Parse(gasm)
		if err != nil {
			t.Skip()
		}
		hi, err := x86.Parse(hasm)
		if err != nil {
			t.Skip()
		}
		a := learn.Candidate{
			Guest:     []arm.Instr{gi},
			Host:      []x86.Instr{hi},
			GuestVars: []string{gvar},
			HostVars:  []string{hvar},
		}
		b := a
		b.GuestVars = append([]string(nil), a.GuestVars...)
		b.HostVars = append([]string(nil), a.HostVars...)
		changed := false
		switch mut % 4 {
		case 0:
			b.Guest = append([]arm.Instr(nil), a.Guest...)
			b.Guest[0].Op2.Imm++
			b.Guest[0].Op2.IsImm = true
			changed = arm.Seq(b.Guest) != arm.Seq(a.Guest)
		case 1:
			b.Host = append([]x86.Instr(nil), a.Host...)
			b.Host[0].Src.Imm++
			changed = x86.Seq(b.Host) != x86.Seq(a.Host)
		case 2:
			b.GuestVars[0] = gvar + "x"
			changed = true
		case 3:
			b.HostVars[0] = hvar + "y"
			changed = true
		}
		ka, kb := CandidateKey(&a), CandidateKey(&b)
		if !changed {
			if ka != kb {
				t.Fatalf("unchanged candidate key differs:\n%q\n%q", ka, kb)
			}
			return
		}
		if ka == kb {
			t.Fatalf("mutated candidate collides with original: %q", ka)
		}
		// And determinism: recomputing never drifts.
		if CandidateKey(&a) != ka {
			t.Fatal("key not deterministic")
		}
	})
}

func TestCandidateKeyContainsSeparator(t *testing.T) {
	c := testCandidate(t)
	if !strings.Contains(CandidateKey(&c), "\n=>\n") {
		t.Fatal("key lost its guest/host separator")
	}
}
