package mine

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"dbtrules/arm"
	"dbtrules/learn"
	"dbtrules/x86"
)

// --- hot-window proposals ------------------------------------------------

// HotWindowSource slides guest windows over the hottest observed
// coverage gaps and pairs each window with the host instructions
// compiled from the same source lines. Unlike line-paired extraction
// the windows are free to start and end mid-line or mid-block, so the
// source reaches sequences the debug tables never offered as
// candidates — including single instructions inside lines whose
// whole-line candidate failed verification; the pairing heuristic
// (host instructions whose line numbers fall inside the window's line
// span) is promiscuous by design and the verifier culls the wrong
// ones. Window starts cover each hot run's full length (HotPC.Len),
// falling back to Span starts for length-less trace-ring entries.
type HotWindowSource struct {
	// MaxWin is the longest guest window proposed (default 4).
	MaxWin int
	// Span is how many window starts to slide past a hot PC whose run
	// length is unknown, i.e. trace-ring entries (default 4).
	Span int
	// TopK caps how many of the hottest PCs are explored per round
	// (default 16).
	TopK int
}

// Name implements Source.
func (s *HotWindowSource) Name() string { return "hot-window" }

func (s *HotWindowSource) maxWin() int {
	if s.MaxWin >= 2 {
		return s.MaxWin
	}
	return 4
}

func (s *HotWindowSource) span() int {
	if s.Span > 0 {
		return s.Span
	}
	return 4
}

func (s *HotWindowSource) topK() int {
	if s.TopK > 0 {
		return s.TopK
	}
	return 16
}

// Propose implements Source.
func (s *HotWindowSource) Propose(ctx *Context, budget int) []learn.Candidate {
	var out []learn.Candidate
	hot := ctx.Hot
	if len(hot) > s.topK() {
		hot = hot[:s.topK()]
	}
	for _, h := range hot {
		p := ctx.pair(h.Pair)
		if p == nil {
			continue
		}
		slide := h.Len
		if slide <= 0 {
			slide = s.span()
		}
		for start := h.PC; start < h.PC+slide; start++ {
			for wlen := 1; wlen <= s.maxWin(); wlen++ {
				if len(out) >= budget {
					return out
				}
				for _, c := range windowCandidates(ctx, p, start, wlen, budget-len(out)) {
					out = append(out, c)
				}
			}
		}
	}
	return out
}

// maxWindowPairings caps how many host pairings one guest window may
// propose, so a single noisy window cannot monopolize the round budget.
const maxWindowPairings = 8

// windowCandidates pairs guest window [start, start+wlen) with host
// sub-windows drawn from the host instructions carrying the same line
// numbers. Line granularity only locates the host region (possibly
// several disjoint runs — loop rotation duplicates a line's code);
// within each run every contiguous sub-window whose memory shape and
// branch discipline agree with the guest window becomes its own
// candidate, shortest host first. Proposing several pairings per window
// is deliberate promiscuity: the verifier culls the wrong ones once,
// the dedup front remembers, and the store keeps whichever surviving
// pairing has the fewest host instructions.
func windowCandidates(ctx *Context, p *learn.Pair, start, wlen, budget int) []learn.Candidate {
	g, h := p.Guest, p.Host
	end := start + wlen
	if start < 0 || end > len(g.Code) {
		return nil
	}
	gf := g.FuncAt(start)
	if gf == nil || g.FuncAt(end-1) != gf {
		return nil
	}
	// Cheap mirror of learn's preparation filters: a window that cannot
	// possibly learn (calls, predication, non-trailing or unconditional
	// branches) must not spend verifier budget.
	for i := start; i < end; i++ {
		in := g.Code[i]
		switch in.Op {
		case arm.BL, arm.BX, arm.PUSH, arm.POP:
			return nil
		}
		if in.Predicated() {
			return nil
		}
		if in.Op == arm.B && (in.Cond == arm.AL || i != end-1) {
			return nil
		}
	}
	endsBr := g.Code[end-1].Op == arm.B
	lines := map[int32]bool{}
	for i := start; i < end; i++ {
		if g.Code[i].Line == 0 {
			return nil
		}
		lines[g.Code[i].Line] = true
	}
	gl, gs := guestAccessCounts(g.Code[start:end])

	if budget > maxWindowPairings {
		budget = maxWindowPairings
	}
	var out []learn.Candidate
	// Maximal contiguous host runs of the window's lines. Sub-windows are
	// enumerated shortest-first so the store-preferred (fewest host
	// instructions) pairing is proposed before budget runs out.
	for lo := 0; lo < len(h.Code) && len(out) < budget; lo++ {
		if !lines[h.Code[lo].Line] || (lo > 0 && lines[h.Code[lo-1].Line]) {
			continue
		}
		hi := lo
		for hi+1 < len(h.Code) && lines[h.Code[hi+1].Line] {
			hi++
		}
		if hf := h.FuncAt(lo); hf == nil || h.FuncAt(hi) != hf {
			continue
		}
		maxH := 4*wlen + 4
		for hlen := 1; hlen <= hi-lo+1 && hlen <= maxH && len(out) < budget; hlen++ {
			for i := lo; i+hlen-1 <= hi && len(out) < budget; i++ {
				if c, ok := hostPairing(p, start, wlen, i, hlen, endsBr, gl, gs); ok && !ctx.Seen(&c) {
					out = append(out, c)
				}
			}
		}
	}
	return out
}

// hostPairing builds the candidate pairing guest window [start,
// start+wlen) with host sub-window [hlo, hlo+hlen), if the sub-window's
// shape can possibly verify: same memory-access counts, matching
// trailing-branch discipline, and none of the host shapes learn's
// preparation rejects outright.
func hostPairing(p *learn.Pair, start, wlen, hlo, hlen int, endsBr bool, gl, gs int) (learn.Candidate, bool) {
	h := p.Host
	hhi := hlo + hlen - 1
	for i := hlo; i <= hhi; i++ {
		switch h.Code[i].Op {
		case x86.CALL, x86.RET, x86.PUSH, x86.POP, x86.JMP:
			return learn.Candidate{}, false
		}
		if h.Code[i].Op == x86.JCC && i != hhi {
			return learn.Candidate{}, false
		}
	}
	if endsBr != (h.Code[hhi].Op == x86.JCC) {
		return learn.Candidate{}, false
	}
	if hl, hs := hostAccessCounts(h.Code[hlo : hhi+1]); hl != gl || hs != gs {
		return learn.Candidate{}, false
	}
	g := p.Guest
	c := learn.Candidate{
		Source: fmt.Sprintf("mine:hot:%s:%d+%d@%d+%d", p.Name, start, wlen, hlo, hlen),
		Line:   g.Code[start].Line,
		Guest:  append([]arm.Instr(nil), g.Code[start:start+wlen]...),
		Host:   append([]x86.Instr(nil), h.Code[hlo:hhi+1]...),
	}
	for i := start; i < start+wlen; i++ {
		c.GuestVars = append(c.GuestVars, g.MemVar[i])
	}
	for i := hlo; i <= hhi; i++ {
		c.HostVars = append(c.HostVars, h.MemVar[i])
	}
	return c, true
}

// --- recombination proposals ---------------------------------------------

// RecombineSource pairs installed rules' guest patterns with alternative
// host bodies drawn from other rules in the store. A recombined
// candidate that verifies yields a rule with a shorter host body for an
// already-covered pattern — exactly the variant the store's §6.1
// fewest-host-instructions dedup prefers — so this source improves rule
// quality (host code size and the cycle model with it) rather than
// coverage. Patterns are used as concrete code: parameter registers are
// ordinary low-numbered registers and parameterized immediates sit at
// zero, and the learner re-generalizes whatever verifies.
type RecombineSource struct{}

// Name implements Source.
func (s *RecombineSource) Name() string { return "recombine" }

// Propose implements Source.
func (s *RecombineSource) Propose(ctx *Context, budget int) []learn.Candidate {
	if ctx.Store == nil {
		return nil
	}
	all := ctx.Store.All()
	var out []learn.Candidate
	for _, a := range all {
		if len(a.ConstDefs) > 0 {
			continue // const-def movs are host-side glue, not a guest pattern trait
		}
		gl, gs := guestAccessCounts(a.Guest)
		for _, b := range all {
			if len(out) >= budget {
				return out
			}
			if b.ID == a.ID || len(b.Host) >= len(a.Host) ||
				a.EndsInBranch != b.EndsInBranch || len(b.ConstDefs) > 0 {
				continue
			}
			hl, hs := hostAccessCounts(b.Host)
			if gl != hl || gs != hs {
				continue // memory-shape mismatch: guaranteed ParamNum reject
			}
			c := learn.Candidate{
				Source: fmt.Sprintf("mine:recomb:%d<-%d", a.ID, b.ID),
				Guest:  append([]arm.Instr(nil), a.Guest...),
				Host:   append([]x86.Instr(nil), b.Host...),
			}
			nameGuestAccesses(&c)
			nameHostAccesses(&c)
			if ctx.Seen(&c) {
				continue
			}
			out = append(out, c)
		}
	}
	return out
}

// guestAccessCounts counts guest memory loads and stores.
func guestAccessCounts(code []arm.Instr) (loads, stores int) {
	for _, in := range code {
		switch in.Op {
		case arm.LDR, arm.LDRB:
			loads++
		case arm.STR, arm.STRB:
			stores++
		}
	}
	return
}

// hostAccessCounts counts host memory reads and writes the way learn's
// hostMemOps classifies them (LEA computes an address, never accesses).
func hostAccessCounts(code []x86.Instr) (reads, writes int) {
	for _, in := range code {
		if in.Op == x86.LEA {
			continue
		}
		if in.Src.Kind == x86.KMem {
			reads++
		}
		if in.Dst.Kind == x86.KMem {
			writes++
		}
	}
	return
}

// nameGuestAccesses assigns positional synthetic variable names: loads
// become ld0, ld1, ... and stores st0, st1, ... in code order. The same
// scheme on the host side makes the k-th load/store of each side pair up
// in learn's (name, read-kind, occurrence) matching — possibly wrongly,
// which the verifier then catches.
func nameGuestAccesses(c *learn.Candidate) {
	c.GuestVars = make([]string, len(c.Guest))
	nl, ns := 0, 0
	for i, in := range c.Guest {
		switch in.Op {
		case arm.LDR, arm.LDRB:
			c.GuestVars[i] = "ld" + strconv.Itoa(nl)
			nl++
		case arm.STR, arm.STRB:
			c.GuestVars[i] = "st" + strconv.Itoa(ns)
			ns++
		}
	}
}

// nameHostAccesses is nameGuestAccesses for the host body. An
// instruction with both operands in memory (which the back end never
// emits) would need two names; one name per instruction is all
// Candidate carries, so such shapes keep an empty name and fail
// parameterization — fine for a promiscuous source.
func nameHostAccesses(c *learn.Candidate) {
	c.HostVars = make([]string, len(c.Host))
	nl, ns := 0, 0
	for i, in := range c.Host {
		if in.Op == x86.LEA {
			continue
		}
		srcMem, dstMem := in.Src.Kind == x86.KMem, in.Dst.Kind == x86.KMem
		switch {
		case srcMem && !dstMem:
			c.HostVars[i] = "ld" + strconv.Itoa(nl)
			nl++
		case dstMem && !srcMem:
			c.HostVars[i] = "st" + strconv.Itoa(ns)
			ns++
		}
	}
}

// --- superblock proposals ------------------------------------------------

// SuperblockSource re-runs combined-line extraction past the learn-time
// CombineLines cap: windows of MinLines..MaxLines adjacent source lines,
// the superblock-length candidates §6.4 says are where learned rules
// beat hand-written ones. Set MinLines just above the cap the offline
// learner ran with so only genuinely new window sizes spend verifier
// budget (the dedup front would drop exact repeats anyway, but line
// pairing at a different cap is a different Source string).
type SuperblockSource struct {
	// MinLines is the smallest window emitted (default 2).
	MinLines int
	// MaxLines is the largest window emitted (default 6).
	MaxLines int
}

// Name implements Source.
func (s *SuperblockSource) Name() string { return "superblock" }

func (s *SuperblockSource) bounds() (lo, hi int) {
	lo, hi = s.MinLines, s.MaxLines
	if lo < 2 {
		lo = 2
	}
	if hi < lo {
		hi = lo + 4
	}
	return
}

// Propose implements Source.
func (s *SuperblockSource) Propose(ctx *Context, budget int) []learn.Candidate {
	lo, hi := s.bounds()
	var out []learn.Candidate
	for i := range ctx.Pairs {
		p := &ctx.Pairs[i]
		for _, c := range learn.ExtractCombined(p.Guest, p.Host, hi) {
			if len(out) >= budget {
				return out
			}
			if combinedLines(c.Source) < lo {
				continue
			}
			c.Source = "mine:super:" + c.Source
			if ctx.Seen(&c) {
				continue
			}
			out = append(out, c)
		}
	}
	return out
}

// combinedLines parses the "+k" suffix ExtractCombined stamps on its
// candidates' Source strings.
func combinedLines(source string) int {
	i := strings.LastIndexByte(source, '+')
	if i < 0 {
		return 0
	}
	k, err := strconv.Atoi(source[i+1:])
	if err != nil {
		return 0
	}
	return k
}

// sortHot orders hot PCs hottest-first with a total tie-break, so every
// consumer sees one deterministic order.
func sortHot(hot []HotPC) {
	sort.Slice(hot, func(i, j int) bool {
		a, b := hot[i], hot[j]
		if a.Weight != b.Weight {
			return a.Weight > b.Weight
		}
		if a.Pair != b.Pair {
			return a.Pair < b.Pair
		}
		return a.PC < b.PC
	})
}
