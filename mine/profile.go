package mine

import (
	"dbtrules/dbt"
	"dbtrules/internal/telemetry"
	"dbtrules/learn"
	"dbtrules/rules"
)

// ProfileResult is one profile run's harvest: the hot-PC ranking the
// hot-window source slides over, and the per-rule dispatch-hit
// attribution the eviction loop judges by.
type ProfileResult struct {
	Hot      []HotPC
	RuleHits map[int]uint64
	Ret      uint32
	Stats    dbt.Stats
}

// Profile runs one guest binary under the rules backend against the
// live store, with per-rule hit attribution enabled, and distills the
// translated-block table into a coverage-gap ranking: one HotPC per
// maximal run of guest instructions the current rules did NOT cover,
// weighted by block dispatches × run length (the dynamic instruction
// count the gap costs). Pointing the window source at gaps instead of
// block entries is what lets mining raise coverage — windows over
// already-covered code can only ever re-derive what the store has. The
// run is a real emulation — same engine, same store, same SelfTest'd
// rules — so the profile can never diverge from what a fleet engine
// would execute; attribution lives outside dbt.Stats and never
// perturbs the modeled machine.
func Profile(pair *learn.Pair, store *rules.Store, args []uint32, maxGuestInstrs uint64) (*ProfileResult, error) {
	e := dbt.NewEngine(pair.Guest, dbt.BackendRules, store)
	e.EnableRuleHits()
	ret, err := e.Run("bench", args, maxGuestInstrs)
	if err != nil {
		return nil, err
	}
	res := &ProfileResult{
		RuleHits: e.RuleHits(),
		Ret:      ret,
		Stats:    e.Stats,
	}
	for _, tb := range e.TBs() {
		if tb.ExecCount == 0 {
			continue
		}
		for i := 0; i < tb.GuestLen; {
			if tb.Covered[i] {
				i++
				continue
			}
			j := i + 1
			for j < tb.GuestLen && !tb.Covered[j] {
				j++
			}
			res.Hot = append(res.Hot, HotPC{
				Pair:   pair.Name,
				PC:     tb.EntryGPC + i,
				Len:    j - i,
				Weight: tb.ExecCount * uint64(j-i),
			})
			i = j
		}
	}
	sortHot(res.Hot)
	return res, nil
}

// TraceHotPCs distills a telemetry trace ring — a remote engine's
// /trace.json?ev=dispatch export, or a local Registry.Events() dump —
// into the hot-PC ranking the hot-window source consumes. Dispatch
// events are sampled (1 in 64) and carry the block's ExecCount at
// sample time in Arg, so the per-PC weight is the largest ExecCount
// observed (a lower bound on the block's true dispatch count); events
// of other kinds are ignored, so callers may pass an unfiltered ring.
func TraceHotPCs(events []telemetry.Event, pairName string) []HotPC {
	weight := map[int]uint64{}
	for _, ev := range events {
		if ev.KindName != telemetry.EvDispatch.String() || ev.GuestPC < 0 {
			continue
		}
		w := ev.Arg
		if w == 0 {
			w = 1
		}
		if w > weight[ev.GuestPC] {
			weight[ev.GuestPC] = w
		}
	}
	out := make([]HotPC, 0, len(weight))
	for pc, w := range weight {
		out = append(out, HotPC{Pair: pairName, PC: pc, Weight: w})
	}
	sortHot(out)
	return out
}
