package mine

import (
	"time"

	"dbtrules/internal/telemetry"
)

// minerTel resolves the miner's metric handles once. All methods are
// nil-safe and armed-gated, following the repo's telemetry discipline:
// an un-instrumented miner behaves identically and records nothing.
//
//	mine_proposed_total{source=...}  candidates offered per source
//	mine_submitted_total             first-seen candidates sent to the verifier
//	mine_duplicate_total             candidates refused by the dedup front
//	mine_verified_total              rules the symbolic verifier produced
//	mine_selftest_reject_total       verified rules the SelfTest gate refused
//	mine_added_total                 rules installed into the live store
//	mine_store_reject_total          rules the store's dedup refused
//	mine_evicted_total               mined rules shed by the eviction loop
//	mine_rounds_total                completed flywheel rounds
//	mine_round_ns                    wall time per round
type minerTel struct {
	reg *telemetry.Registry

	proposedBySource map[string]*telemetry.Counter
	submittedC       *telemetry.Counter
	duplicateC       *telemetry.Counter
	verifiedC        *telemetry.Counter
	selftestRejC     *telemetry.Counter
	addedC           *telemetry.Counter
	storeRejC        *telemetry.Counter
	evictedC         *telemetry.Counter
	roundsC          *telemetry.Counter
	roundNS          *telemetry.Histogram
}

func newMinerTel(reg *telemetry.Registry) *minerTel {
	if reg == nil {
		return nil
	}
	return &minerTel{
		reg:              reg,
		proposedBySource: map[string]*telemetry.Counter{},
		submittedC:       reg.Counter("mine_submitted_total"),
		duplicateC:       reg.Counter("mine_duplicate_total"),
		verifiedC:        reg.Counter("mine_verified_total"),
		selftestRejC:     reg.Counter("mine_selftest_reject_total"),
		addedC:           reg.Counter("mine_added_total"),
		storeRejC:        reg.Counter("mine_store_reject_total"),
		evictedC:         reg.Counter("mine_evicted_total"),
		roundsC:          reg.Counter("mine_rounds_total"),
		roundNS:          reg.Histogram("mine_round_ns"),
	}
}

func (t *minerTel) armed() bool { return t != nil && t.reg.Armed() }

func (t *minerTel) proposed(source string, n int) {
	if !t.armed() || n == 0 {
		return
	}
	c := t.proposedBySource[source]
	if c == nil {
		c = t.reg.Counter(telemetry.Label("mine_proposed_total", "source", source))
		t.proposedBySource[source] = c
	}
	c.Add(uint64(n))
}

func (t *minerTel) submitted(submitted, duplicates int) {
	if !t.armed() {
		return
	}
	t.submittedC.Add(uint64(submitted))
	t.duplicateC.Add(uint64(duplicates))
}

func (t *minerTel) outcome(verified, selftestKO, added, storeKO int) {
	if !t.armed() {
		return
	}
	t.verifiedC.Add(uint64(verified))
	t.selftestRejC.Add(uint64(selftestKO))
	t.addedC.Add(uint64(added))
	t.storeRejC.Add(uint64(storeKO))
}

func (t *minerTel) evicted(n int) {
	if !t.armed() || n == 0 {
		return
	}
	t.evictedC.Add(uint64(n))
}

func (t *minerTel) round(d time.Duration) {
	if !t.armed() {
		return
	}
	t.roundsC.Inc()
	t.roundNS.Observe(d)
}
