// Package mine implements a continuous rule-mining flywheel: promiscuous
// proposal sources generate rule candidates the compiler's debug-line
// tables never paired, the existing learn verifier pool decides which of
// them are semantically sound, and survivors are published into a live
// rules.Store — optionally one a rules/dist server is distributing to
// running engines.
//
// The design splits the paper's offline learning phase into a
// propose-then-verify loop (the shape Guess & Sketch and Forklift argue
// for): sources may be cheap and wrong because every candidate still has
// to pass the full symbolic-verification ladder plus the same
// rules.SelfTest gate as line-paired rules before it can reach the
// store. Mining can therefore only ever change *coverage*, never
// *semantics* — the differential gates in bench pin that down.
//
// The flywheel's parts:
//
//   - Source implementations (sources.go): sliding guest windows over
//     the hottest observed PCs, recombination of installed rules' guest
//     patterns with alternative host bodies, and superblock-length
//     combined-line windows past the learn-time CombineLines cap.
//   - A dedup front (Dedup) keyed by CandidateKey, so a candidate the
//     verifier already rejected is never re-verified.
//   - The Miner round loop (miner.go): propose → dedup → verify
//     (learn.LearnCandidates, fault-contained and parallel) → SelfTest →
//     Store.AddAll, plus a ranking/eviction pass driven by the per-rule
//     dispatch-hit attribution dbt.Engine records (EnableRuleHits).
//
// cmd/ruleminer wires a Miner to a dist server as a long-lived service.
package mine

import (
	"fmt"
	"strings"

	"dbtrules/arm"
	"dbtrules/learn"
	"dbtrules/rules"
	"dbtrules/x86"
)

// MineIDBase is the first rule ID the miner assigns. Line-paired
// learners number rules from 1 per Learner; starting mined IDs here
// keeps the two ID spaces disjoint, so runtime fault attribution
// (FaultError.RuleID → Store.Quarantine) and the miner's own eviction
// (Store.Remove) can never hit a line-paired rule by collision.
const MineIDBase = 1 << 20

// IsMinedID reports whether a rule ID lies in the miner's ID space.
func IsMinedID(id int) bool { return id >= MineIDBase }

// HotPC is one observed-hot guest location worth mining: a
// coverage-gap run from an in-process profile (Profile, which sets Len
// to the run length) or a hot block entry from a remote engine's trace
// ring (TraceHotPCs, which cannot see coverage and leaves Len zero).
type HotPC struct {
	Pair   string // benchmark / learn.Pair name the PC belongs to
	PC     int    // guest PC the hot run starts at
	Len    int    // run length in guest instructions (0 = unknown)
	Weight uint64 // hotness: dispatch-derived guest-instruction weight
}

// Context is the per-round view proposal sources draw from. Sources must
// treat it as read-only.
type Context struct {
	// Pairs are the compiled guest/host binaries available for
	// window-based proposals.
	Pairs []learn.Pair
	// Hot lists observed-hot guest PCs, hottest first.
	Hot []HotPC
	// Store is the live rule store (recombination draws bodies from it).
	Store *rules.Store

	// seen consults the miner's dedup front without marking (attached by
	// Miner.Round; nil outside a round).
	seen func(key string) bool
}

// Seen reports whether an equivalent candidate was already submitted to
// the verifier in some earlier round. Sources should skip seen
// candidates before counting proposals against their budget — a source
// that deterministically re-proposes the same budget-sized prefix every
// round would otherwise starve the unseen tail of its own list forever.
func (c *Context) Seen(cand *learn.Candidate) bool {
	return c.seen != nil && c.seen(CandidateKey(cand))
}

// pair returns the named pair, or nil.
func (c *Context) pair(name string) *learn.Pair {
	for i := range c.Pairs {
		if c.Pairs[i].Name == name {
			return &c.Pairs[i]
		}
	}
	return nil
}

// Source proposes rule candidates. Implementations are free to be
// promiscuous — wrong pairings cost one verifier rejection and are then
// remembered by the dedup front forever — but should stay within budget
// (a soft cap on proposals per round) and be deterministic given the
// same Context, so mining runs are reproducible.
type Source interface {
	Name() string
	Propose(ctx *Context, budget int) []learn.Candidate
}

// CandidateKey returns the canonical identity of a candidate for dedup:
// two candidates with the same key would walk the identical
// prepare/parameterize/verify path, so verifying one verdict is enough.
// The key covers the guest and host instruction sequences plus both
// memory-variable name lists (names drive operand pairing, so they are
// semantically load-bearing). Variable names are length-prefixed so no
// choice of names can collide across field boundaries
// (FuzzMineCandidateKey pins this).
func CandidateKey(c *learn.Candidate) string {
	var b strings.Builder
	b.WriteString(arm.Seq(c.Guest))
	b.WriteString("\n=>\n")
	b.WriteString(x86.Seq(c.Host))
	for _, v := range c.GuestVars {
		fmt.Fprintf(&b, "\ng%d:%s", len(v), v)
	}
	for _, v := range c.HostVars {
		fmt.Fprintf(&b, "\nh%d:%s", len(v), v)
	}
	return b.String()
}

// Dedup is the miner's submission front: a candidate key is admitted at
// most once, ever. Keys are recorded at submission time — before the
// verifier runs — so a candidate the verifier rejects is never submitted
// for verification twice (the property TestDedupNeverResubmits counts).
type Dedup struct {
	seen       map[string]struct{}
	submitted  uint64
	duplicates uint64
}

// NewDedup returns an empty dedup front.
func NewDedup() *Dedup { return &Dedup{seen: map[string]struct{}{}} }

// Admit records the key and reports whether this was its first
// submission. Callers must only Admit candidates they are actually about
// to submit (over-budget proposals must not be marked seen, or they
// would be lost forever instead of retried next round).
func (d *Dedup) Admit(key string) bool {
	if _, dup := d.seen[key]; dup {
		d.duplicates++
		return false
	}
	d.seen[key] = struct{}{}
	d.submitted++
	return true
}

// Submitted returns how many keys have been admitted (first-seen).
func (d *Dedup) Submitted() uint64 { return d.submitted }

// Duplicates returns how many admissions were refused as already-seen.
func (d *Dedup) Duplicates() uint64 { return d.duplicates }

// Len returns the number of distinct keys ever admitted.
func (d *Dedup) Len() int { return len(d.seen) }

// Has reports whether the key was ever admitted, without recording
// anything — the read-only query sources use to spend their proposal
// budget on unseen candidates.
func (d *Dedup) Has(key string) bool {
	_, ok := d.seen[key]
	return ok
}
