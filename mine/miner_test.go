package mine

import (
	"testing"

	"dbtrules/rules"
)

func evictStore(t *testing.T) (*rules.Store, *Miner) {
	t.Helper()
	store := rules.NewStore()
	m := NewMiner(store, nil)
	add := func(id int, guest, host []string) {
		r := testRule(t, id, guest, host)
		if !store.Add(r) {
			t.Fatalf("store refused rule %d", id)
		}
	}
	// A line-paired rule and three mined ones.
	add(5, []string{"add r0, r0, r1"}, []string{"addl %ecx, %eax"})
	add(MineIDBase+0, []string{"sub r0, r0, r1"}, []string{"subl %ecx, %eax"})
	add(MineIDBase+1, []string{"eor r0, r0, r1"}, []string{"xorl %ecx, %eax"})
	add(MineIDBase+2, []string{"orr r0, r0, r1"}, []string{"orl %ecx, %eax"})
	return store, m
}

func TestEvictColdSemantics(t *testing.T) {
	store, m := evictStore(t)
	m.round = 3
	m.installedAt[MineIDBase+0] = 1 // past grace, cold -> evicted
	m.installedAt[MineIDBase+1] = 1 // past grace, hot  -> kept
	m.installedAt[MineIDBase+2] = 3 // installed this round -> grace
	hits := map[int]uint64{MineIDBase + 1: 7}

	if n := m.EvictCold(hits); n != 1 {
		t.Fatalf("evicted %d rules, want 1", n)
	}
	left := map[int]bool{}
	for _, r := range store.All() {
		left[r.ID] = true
	}
	if left[MineIDBase+0] {
		t.Error("cold mined rule survived")
	}
	if !left[MineIDBase+1] || !left[MineIDBase+2] {
		t.Error("hot or in-grace mined rule evicted")
	}
	if !left[5] {
		t.Error("line-paired rule evicted")
	}
	// The evicted rule's pattern must remain re-addable (clean removal,
	// not quarantine).
	if !store.Add(testRule(t, MineIDBase+9, []string{"sub r0, r0, r1"}, []string{"subl %ecx, %eax"})) {
		t.Error("evicted pattern is barred from reinstallation")
	}
}

// TestEvictColdSkipsForeignMinedIDs: a mined-range rule this miner did
// not install (say, synced from an upstream miner) is never evicted.
func TestEvictColdSkipsForeignMinedIDs(t *testing.T) {
	store, m := evictStore(t)
	m.round = 5
	// installedAt deliberately left empty: none of the mined-range rules
	// are this miner's.
	if n := m.EvictCold(map[int]uint64{}); n != 0 {
		t.Fatalf("evicted %d foreign rules", n)
	}
	if store.Count() != 4 {
		t.Fatalf("store count = %d, want 4", store.Count())
	}
}

// TestEvictColdSparesReplacements: a mined rule that displaced an
// incumbent pattern carries baseline coverage; evicting it would drop
// the pattern entirely (Remove cannot restore the displaced rule), so
// the miner must pin it.
func TestEvictColdSparesReplacements(t *testing.T) {
	store, m := evictStore(t)
	m.round = 4
	m.installedAt[MineIDBase+0] = 1
	m.replaced[MineIDBase+0] = true
	if n := m.EvictCold(map[int]uint64{}); n != 0 {
		t.Fatalf("evicted %d replacement rules", n)
	}
	found := false
	for _, r := range store.All() {
		if r.ID == MineIDBase+0 {
			found = true
		}
	}
	if !found {
		t.Fatal("replacement rule missing from store")
	}
}

func TestRoundCountsEvictionsOnce(t *testing.T) {
	store, m := evictStore(t)
	m.round = 3
	m.installedAt[MineIDBase+0] = 1
	if n := m.EvictCold(map[int]uint64{}); n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
	st := m.Round(&Context{Store: store})
	if st.Evicted != 1 {
		t.Fatalf("round stats carried %d evictions, want 1", st.Evicted)
	}
	if st2 := m.Round(&Context{Store: store}); st2.Evicted != 0 {
		t.Fatalf("evictions double-counted: %d", st2.Evicted)
	}
}

func TestWithDefaults(t *testing.T) {
	o := (*Options)(nil).withDefaults()
	if len(o.Sources) != 3 {
		t.Errorf("default sources = %d, want 3", len(o.Sources))
	}
	if o.Budget != 256 || o.SelfTestTrials != 8 || o.EvictGrace != 1 {
		t.Errorf("defaults = %+v", o)
	}
	withPublish := Options{Learn: (&Options{}).withDefaults().Learn}
	withPublish.Learn.PublishTo = rules.NewStore()
	if got := withPublish.withDefaults(); got.Learn.PublishTo != nil {
		t.Error("withDefaults kept Learn.PublishTo; the miner must own publication")
	}
}
