package mine

import (
	"testing"

	"dbtrules/corpus"
	"dbtrules/internal/telemetry"
	"dbtrules/learn"
	"dbtrules/rules"
)

func TestProfileEmptyStoreGapsEverything(t *testing.T) {
	p := compiledPair(t, "mcf")
	b, _ := corpus.ByName("mcf")
	res, err := Profile(&p, rules.NewStore(), []uint32{uint32(b.TestN), 12345}, 500_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hot) == 0 {
		t.Fatal("no coverage gaps against an empty store")
	}
	// Gaps are whole blocks when nothing covers anything; every entry is
	// weighted, sorted hottest-first, and length-bearing.
	for i, h := range res.Hot {
		if h.Len <= 0 || h.Weight == 0 || h.Pair != "mcf" {
			t.Fatalf("gap %d malformed: %+v", i, h)
		}
		if i > 0 && res.Hot[i-1].Weight < h.Weight {
			t.Fatalf("gaps not sorted hottest-first at %d", i)
		}
	}
	if len(res.RuleHits) != 0 {
		t.Fatalf("rule hits recorded with no rules: %v", res.RuleHits)
	}
}

func TestProfileRuleHitsAndFewerGaps(t *testing.T) {
	p := compiledPair(t, "mcf")
	b, _ := corpus.ByName("mcf")
	args := []uint32{uint32(b.TestN), 12345}

	empty, err := Profile(&p, rules.NewStore(), args, 500_000_000)
	if err != nil {
		t.Fatal(err)
	}
	l := learn.NewLearner(&learn.Options{})
	rs, _ := l.LearnProgram(p.Guest, p.Host)
	if len(rs) == 0 {
		t.Fatal("learner produced no baseline rules")
	}
	store := rules.NewStore()
	store.AddAll(rs)
	with, err := Profile(&p, store, args, 500_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if with.Ret != empty.Ret {
		t.Fatalf("rules changed semantics: ret %d vs %d", with.Ret, empty.Ret)
	}
	if with.Stats.GuestInstrs != empty.Stats.GuestInstrs {
		t.Fatalf("rules changed guest instruction count: %d vs %d",
			with.Stats.GuestInstrs, empty.Stats.GuestInstrs)
	}
	if len(with.RuleHits) == 0 {
		t.Fatal("no rule hits recorded with a learned store")
	}
	var emptyGap, withGap uint64
	for _, h := range empty.Hot {
		emptyGap += uint64(h.Len)
	}
	for _, h := range with.Hot {
		withGap += uint64(h.Len)
	}
	if withGap >= emptyGap {
		t.Fatalf("learned rules did not shrink the static gap: %d vs %d", withGap, emptyGap)
	}
}

func TestTraceHotPCs(t *testing.T) {
	dispatch := telemetry.EvDispatch.String()
	events := []telemetry.Event{
		{KindName: dispatch, GuestPC: 10, Arg: 5},
		{KindName: dispatch, GuestPC: 10, Arg: 64}, // max wins
		{KindName: dispatch, GuestPC: 20, Arg: 0},  // zero arg counts as 1
		{KindName: "fault", GuestPC: 30, Arg: 999}, // wrong kind ignored
		{KindName: dispatch, GuestPC: -1, Arg: 3},  // negative PC ignored
	}
	hot := TraceHotPCs(events, "mcf")
	if len(hot) != 2 {
		t.Fatalf("got %d hot PCs, want 2: %+v", len(hot), hot)
	}
	if hot[0].PC != 10 || hot[0].Weight != 64 || hot[0].Pair != "mcf" {
		t.Fatalf("hot[0] = %+v", hot[0])
	}
	if hot[1].PC != 20 || hot[1].Weight != 1 {
		t.Fatalf("hot[1] = %+v", hot[1])
	}
	// Trace entries carry no coverage information; Len stays zero so the
	// window source falls back to its Span slide.
	for _, h := range hot {
		if h.Len != 0 {
			t.Fatalf("trace entry carries Len %d", h.Len)
		}
	}
}

func TestTraceHotPCsEmpty(t *testing.T) {
	if hot := TraceHotPCs(nil, "x"); len(hot) != 0 {
		t.Fatalf("nil events produced %d entries", len(hot))
	}
}
