package mine

import (
	"time"

	"dbtrules/arm"
	"dbtrules/internal/telemetry"
	"dbtrules/learn"
	"dbtrules/rules"
)

// Options tunes a Miner.
type Options struct {
	// Sources are the proposal generators consulted each round, in order.
	// Empty uses DefaultSources(1).
	Sources []Source
	// Learn configures the verification pipeline (Jobs fans candidates
	// over learn's fault-contained worker pool; Equiv sets the solver
	// budget). PublishTo is ignored: the miner owns publication so the
	// SelfTest gate and ID renumbering sit between the verifier and the
	// store.
	Learn learn.Options
	// Budget caps the candidates submitted for verification per round
	// (default 256). Proposals beyond the budget are not marked seen, so
	// they are retried in later rounds.
	Budget int
	// SelfTestTrials/SelfTestSeed parameterize the rules.SelfTest gate
	// applied to every verified rule before it may reach the store — the
	// same defence dbtrun and ruleserve apply to file-loaded rules
	// (defaults 8 and 1, matching theirs).
	SelfTestTrials int
	SelfTestSeed   int64
	// EvictGrace is how many full rounds a mined rule may sit in the
	// store without a recorded dispatch hit before EvictCold sheds it
	// (default 1: a rule gets one whole profile cycle to prove itself).
	EvictGrace int
	// Telemetry, when non-nil and armed, receives the mine_* counters.
	Telemetry *telemetry.Registry
}

func (o *Options) withDefaults() Options {
	out := Options{}
	if o != nil {
		out = *o
	}
	if len(out.Sources) == 0 {
		out.Sources = DefaultSources(1)
	}
	if out.Budget <= 0 {
		out.Budget = 256
	}
	if out.SelfTestTrials <= 0 {
		out.SelfTestTrials = 8
		out.SelfTestSeed = 1
	}
	if out.EvictGrace <= 0 {
		out.EvictGrace = 1
	}
	out.Learn.PublishTo = nil
	return out
}

// DefaultSources returns the standard proposal mix: hot-window sliding
// over observed-hot PCs, recombination of installed rules, and
// superblock-length combined-line windows starting just past
// combineBase (the CombineLines cap the offline line-paired learner ran
// with; 0 or 1 means per-line extraction only, so superblocks start at
// 2 lines).
func DefaultSources(combineBase int) []Source {
	if combineBase < 1 {
		combineBase = 1
	}
	return []Source{
		&HotWindowSource{},
		&RecombineSource{},
		&SuperblockSource{MinLines: combineBase + 1, MaxLines: combineBase + 5},
	}
}

// RoundStats is one mining round's accounting.
type RoundStats struct {
	Round      int
	Proposed   int            // candidates offered by sources
	Duplicates int            // refused by the dedup front (already seen)
	Submitted  int            // handed to the verifier (first-seen, within budget)
	PerSource  map[string]int // submitted, by source name
	Buckets    [learn.NumBuckets]int
	Verified   int // rules the symbolic verifier produced
	SelfTestKO int // verified rules the runtime SelfTest gate rejected
	Added      int // rules installed (or replacing a longer-host rule)
	StoreKO    int // rules the store's dedup/quarantine refused
	Evicted    int // mined rules shed by EvictCold since the last round
	Elapsed    time.Duration
}

// Miner runs the propose-then-verify flywheel against a live store.
// A Miner is not safe for concurrent use; run rounds from one goroutine
// (the verification fan-out inside a round is learn's worker pool).
type Miner struct {
	opts  Options
	store *rules.Store
	dedup *Dedup
	tel   *minerTel

	nextID int
	round  int
	// installedAt records, per mined rule ID, the round that installed
	// it, so EvictCold can grant a grace period before judging hotness.
	installedAt map[int]int
	// replaced marks mined rules whose guest pattern already had a rule
	// in the store at install time: installing them displaced that rule
	// (the store keeps one rule per pattern, fewest host instructions
	// wins). Evicting such a rule would not restore the displaced one —
	// it would drop the pattern entirely, regressing coverage below the
	// seed baseline on workloads the miner's profile never runs — so
	// EvictCold must never touch them.
	replaced map[int]bool

	verifierSubmits uint64
	pendingEvicted  int
}

// NewMiner returns a miner publishing into store.
func NewMiner(store *rules.Store, opts *Options) *Miner {
	o := opts.withDefaults()
	return &Miner{
		opts:        o,
		store:       store,
		dedup:       NewDedup(),
		tel:         newMinerTel(o.Telemetry),
		nextID:      MineIDBase,
		installedAt: map[int]int{},
		replaced:    map[int]bool{},
	}
}

// VerifierSubmits returns the total number of candidates ever handed to
// the verification pipeline — the counter the dedup guarantee is stated
// in: it grows by at most one per distinct candidate key, ever.
func (m *Miner) VerifierSubmits() uint64 { return m.verifierSubmits }

// DedupStats exposes the dedup front's counters (submitted, refused).
func (m *Miner) DedupStats() (submitted, duplicates uint64) {
	return m.dedup.Submitted(), m.dedup.Duplicates()
}

// Round runs one flywheel turn: every source proposes against ctx, the
// dedup front admits first-seen candidates up to the budget, the learn
// pipeline verifies them, survivors pass the SelfTest gate, get IDs in
// the mined space, and land in the store via one AddAll batch.
func (m *Miner) Round(ctx *Context) *RoundStats {
	start := time.Now()
	m.round++
	st := &RoundStats{Round: m.round, PerSource: map[string]int{}}
	st.Evicted = m.pendingEvicted
	m.pendingEvicted = 0

	ctx.seen = m.dedup.Has
	defer func() { ctx.seen = nil }()

	var batch []learn.Candidate
	for _, src := range m.opts.Sources {
		remaining := m.opts.Budget - len(batch)
		if remaining <= 0 {
			break
		}
		props := src.Propose(ctx, remaining)
		st.Proposed += len(props)
		m.tel.proposed(src.Name(), len(props))
		for i := range props {
			if len(batch) >= m.opts.Budget {
				// Over-budget proposals are dropped unseen so a later
				// round can retry them.
				break
			}
			if !m.dedup.Admit(CandidateKey(&props[i])) {
				st.Duplicates++
				continue
			}
			batch = append(batch, props[i])
			st.PerSource[src.Name()]++
		}
	}
	st.Submitted = len(batch)
	m.verifierSubmits += uint64(len(batch))
	m.tel.submitted(st.Submitted, st.Duplicates)

	if len(batch) > 0 {
		// A fresh learner per round: its IDs are provisional (renumbered
		// into the mined space below) and its stats are per-round.
		opts := m.opts.Learn
		learner := learn.NewLearner(&opts)
		out, lst := learner.LearnCandidates(batch, 0)
		st.Buckets = lst.Counts
		st.Verified = len(out)

		accepted := make([]*rules.Rule, 0, len(out))
		for _, r := range out {
			// The same runtime gate file-loaded and distributed rules
			// pass: symbolic verification already vouched for the rule,
			// but the gate is cheap and uniform admission is the
			// subsystem's correctness story.
			if err := r.SelfTest(m.opts.SelfTestTrials, m.opts.SelfTestSeed); err != nil {
				st.SelfTestKO++
				continue
			}
			r.ID = m.nextID
			m.nextID++
			accepted = append(accepted, r)
		}
		// Snapshot the guest patterns present before publication: an
		// accepted rule whose pattern is already installed replaces the
		// incumbent, and such replacements are exempt from eviction (see
		// the replaced field).
		existing := map[string]bool{}
		if len(accepted) > 0 {
			for _, r := range m.store.All() {
				existing[arm.Seq(r.Guest)] = true
			}
		}
		added, rejected := m.store.AddAll(accepted)
		st.Added, st.StoreKO = added, rejected
		for _, r := range accepted {
			m.installedAt[r.ID] = m.round
			if existing[arm.Seq(r.Guest)] {
				m.replaced[r.ID] = true
			}
		}
		m.tel.outcome(st.Verified, st.SelfTestKO, added, rejected)
	}

	st.Elapsed = time.Since(start)
	m.tel.round(st.Elapsed)
	return st
}

// EvictCold sheds mined rules that are not earning their keep: any rule
// in the mined ID space, installed at least EvictGrace rounds ago, with
// no dispatch hit in the profile window `hits` covers (the per-rule
// attribution dbt.Engine.RuleHits records). Line-paired rules are never
// touched — the miner only ever evicts what it installed — and neither
// are mined rules that replaced an incumbent pattern (see the replaced
// field). Eviction is a
// clean Store.Remove, not a quarantine: an equivalent rule stays
// re-addable, and the dedup front already prevents re-verifying the
// exact same candidate. Returns the number of rules removed.
func (m *Miner) EvictCold(hits map[int]uint64) int {
	evicted := 0
	for _, r := range m.store.All() {
		if !IsMinedID(r.ID) {
			continue
		}
		installed, mine := m.installedAt[r.ID]
		if !mine || m.round-installed < m.opts.EvictGrace || m.replaced[r.ID] {
			continue
		}
		if hits[r.ID] > 0 {
			continue
		}
		if n := m.store.Remove(r.ID); n > 0 {
			evicted += n
			delete(m.installedAt, r.ID)
		}
	}
	m.pendingEvicted += evicted
	m.tel.evicted(evicted)
	return evicted
}
