// Package expr implements fixed-width bitvector expressions with a
// canonicalizing simplifier. It is the term language shared by the ARM and
// x86 symbolic executors and by the rule verifier: instruction sequences are
// symbolically executed into expr trees, and two sequences are semantically
// equivalent when their final-state expressions are equivalent.
//
// Expressions are immutable. All constructors simplify eagerly:
// constants fold, associative/commutative operators flatten and sort into a
// canonical order, and additive structure is kept in a linear normal form
// (sum of coefficient×term products) so that, e.g.,
//
//	(r1 + (r0 << 2)) - 4   and   ecx + eax*4 + (-4)
//
// normalize to the same shape. This catches most equivalences syntactically;
// the remaining ones are decided by package bitblast.
package expr

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Kind discriminates the three node shapes.
type Kind uint8

const (
	// KConst is a constant of a given width.
	KConst Kind = iota
	// KSym is a free symbolic variable (an unknown input value).
	KSym
	// KNode is an operator applied to arguments.
	KNode
)

// Op enumerates the operators usable in a KNode expression.
type Op uint8

const (
	// OpAdd is n-ary two's-complement addition.
	OpAdd Op = iota
	// OpMul is n-ary two's-complement multiplication.
	OpMul
	// OpAnd is n-ary bitwise AND.
	OpAnd
	// OpOr is n-ary bitwise OR.
	OpOr
	// OpXor is n-ary bitwise XOR.
	OpXor
	// OpNot is bitwise complement.
	OpNot
	// OpShl is logical shift left; the shift amount is Args[1].
	OpShl
	// OpLShr is logical (unsigned) shift right.
	OpLShr
	// OpAShr is arithmetic (signed) shift right.
	OpAShr
	// OpUDiv is unsigned division (x/0 defined as all-ones, like SMT-LIB).
	OpUDiv
	// OpSDiv is signed division (x/0 defined as all-ones).
	OpSDiv
	// OpURem is unsigned remainder (x%0 defined as x).
	OpURem
	// OpEq is equality; result has width 1.
	OpEq
	// OpUlt is unsigned less-than; result has width 1.
	OpUlt
	// OpSlt is signed less-than; result has width 1.
	OpSlt
	// OpITE is if-then-else: Args[0] is a width-1 condition.
	OpITE
	// OpExtract selects bits [Hi:Lo] of Args[0].
	OpExtract
	// OpZeroExt zero-extends Args[0] to Width.
	OpZeroExt
	// OpSignExt sign-extends Args[0] to Width.
	OpSignExt
	// OpConcat concatenates Args[0] (high bits) with Args[1] (low bits).
	OpConcat
)

var opNames = [...]string{
	OpAdd: "add", OpMul: "mul", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpNot: "not", OpShl: "shl", OpLShr: "lshr", OpAShr: "ashr",
	OpUDiv: "udiv", OpSDiv: "sdiv", OpURem: "urem",
	OpEq: "eq", OpUlt: "ult", OpSlt: "slt", OpITE: "ite",
	OpExtract: "extract", OpZeroExt: "zext", OpSignExt: "sext",
	OpConcat: "concat",
}

// String returns the operator mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Expr is an immutable bitvector expression node. Construct values only
// through the package constructors, which enforce width discipline and
// canonicalize; never mutate a returned Expr.
type Expr struct {
	Kind  Kind
	Op    Op
	Width int // result width in bits, 1..64
	Val   uint64
	Name  string
	Args  []*Expr
	Hi    int // OpExtract upper bit (inclusive)
	Lo    int // OpExtract lower bit (inclusive)

	key string // cached canonical serialization
}

// Mask returns the bitmask of w one-bits (w in 1..64).
func Mask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w)) - 1
}

func truncate(v uint64, w int) uint64 { return v & Mask(w) }

// signExtVal sign-extends a w-bit value to 64 bits.
func signExtVal(v uint64, w int) int64 {
	if w >= 64 {
		return int64(v)
	}
	shift := uint(64 - w)
	return int64(v<<shift) >> shift
}

// Const returns a constant of the given width; the value is truncated.
func Const(w int, v uint64) *Expr {
	checkWidth(w)
	return &Expr{Kind: KConst, Width: w, Val: truncate(v, w)}
}

// Sym returns a fresh reference to the named symbolic variable.
func Sym(w int, name string) *Expr {
	checkWidth(w)
	return &Expr{Kind: KSym, Width: w, Name: name}
}

// One and Zero helpers for width-1 booleans.
var (
	// True is the width-1 constant 1.
	True = Const(1, 1)
	// False is the width-1 constant 0.
	False = Const(1, 0)
)

// The simplifier hands out True and False as shared singletons, so their
// lazily-cached keys must be materialized before concurrent learners can
// reach them; every other node is confined to the goroutine that built it.
func init() {
	True.Key()
	False.Key()
}

func checkWidth(w int) {
	if w < 1 || w > 64 {
		panic(fmt.Sprintf("expr: invalid width %d", w))
	}
}

func checkSame(a, b *Expr) {
	if a.Width != b.Width {
		panic(fmt.Sprintf("expr: width mismatch %d vs %d (%s vs %s)", a.Width, b.Width, a, b))
	}
}

// IsConst reports whether e is a constant equal to v (after truncation).
func (e *Expr) IsConst(v uint64) bool {
	return e.Kind == KConst && e.Val == truncate(v, e.Width)
}

// ConstVal returns the constant value and true when e is a constant.
func (e *Expr) ConstVal() (uint64, bool) {
	if e.Kind == KConst {
		return e.Val, true
	}
	return 0, false
}

// Key returns a canonical serialization of e. Two structurally identical
// expressions have equal keys, and keys impose the canonical argument order
// for commutative operators.
func (e *Expr) Key() string {
	if e.key != "" {
		return e.key
	}
	var b strings.Builder
	e.writeKey(&b)
	e.key = b.String()
	return e.key
}

func (e *Expr) writeKey(b *strings.Builder) {
	switch e.Kind {
	case KConst:
		fmt.Fprintf(b, "#%d:%d", e.Width, e.Val)
	case KSym:
		fmt.Fprintf(b, "$%d:%s", e.Width, e.Name)
	default:
		fmt.Fprintf(b, "(%s:%d", e.Op, e.Width)
		if e.Op == OpExtract {
			fmt.Fprintf(b, "[%d:%d]", e.Hi, e.Lo)
		}
		for _, a := range e.Args {
			b.WriteByte(' ')
			b.WriteString(a.Key())
		}
		b.WriteByte(')')
	}
}

// String renders e in a compact prefix syntax for diagnostics.
func (e *Expr) String() string { return e.Key() }

// Equal reports structural equality (after canonicalization this is the
// first rung of the equivalence ladder).
func Equal(a, b *Expr) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	return a.Width == b.Width && a.Key() == b.Key()
}

func node(op Op, w int, args ...*Expr) *Expr {
	return &Expr{Kind: KNode, Op: op, Width: w, Args: args}
}

// --- linear normal form for addition -----------------------------------

// linTerm is coefficient*base; base == nil denotes the constant term.
type linTerm struct {
	base  *Expr
	coeff uint64
}

// linearize decomposes e into a list of coefficient×base terms plus a
// constant, all at width w. It looks through OpAdd and const-factor OpMul.
func linearize(e *Expr) (terms map[string]linTerm, konst uint64) {
	terms = map[string]linTerm{}
	konst = 0
	var walk func(e *Expr, coeff uint64)
	walk = func(e *Expr, coeff uint64) {
		w := e.Width
		switch {
		case e.Kind == KConst:
			konst += coeff * e.Val
		case e.Kind == KNode && e.Op == OpAdd:
			for _, a := range e.Args {
				walk(a, coeff)
			}
		case e.Kind == KNode && e.Op == OpNot:
			// ~x == -x - 1 inside additions: fold into the linear form so
			// two's-complement subtraction idioms unify.
			konst -= coeff
			walk(e.Args[0], -coeff)
		case e.Kind == KNode && e.Op == OpMul:
			// Split constant factors from the rest.
			c := uint64(1)
			var rest []*Expr
			for _, a := range e.Args {
				if v, ok := a.ConstVal(); ok {
					c *= v
				} else {
					rest = append(rest, a)
				}
			}
			switch len(rest) {
			case 0:
				konst += coeff * c
			case 1:
				addTerm(terms, rest[0], coeff*c)
			default:
				base := node(OpMul, w, rest...)
				sortArgs(base.Args)
				addTerm(terms, base, coeff*c)
			}
		default:
			addTerm(terms, e, coeff)
		}
	}
	walk(e, 1)
	return terms, konst
}

func addTerm(terms map[string]linTerm, base *Expr, coeff uint64) {
	k := base.Key()
	t := terms[k]
	t.base = base
	t.coeff += coeff
	terms[k] = t
}

func sortArgs(args []*Expr) {
	sort.Slice(args, func(i, j int) bool { return args[i].Key() < args[j].Key() })
}

// rebuildLinear converts the linear form back to a canonical expression.
func rebuildLinear(w int, terms map[string]linTerm, konst uint64) *Expr {
	konst = truncate(konst, w)
	keys := make([]string, 0, len(terms))
	for k, t := range terms {
		if truncate(t.coeff, w) == 0 {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var parts []*Expr
	for _, k := range keys {
		t := terms[k]
		c := truncate(t.coeff, w)
		if c == 1 {
			parts = append(parts, t.base)
		} else if t.base.Kind == KNode && t.base.Op == OpMul {
			// Splice multiplicative bases flat so the rebuilt term matches
			// what the Mul constructor produces for the same factors.
			args := append([]*Expr{Const(w, c)}, t.base.Args...)
			parts = append(parts, node(OpMul, w, args...))
		} else {
			parts = append(parts, node(OpMul, w, Const(w, c), t.base))
		}
	}
	if konst != 0 || len(parts) == 0 {
		parts = append(parts, Const(w, konst))
	}
	if len(parts) == 1 {
		return parts[0]
	}
	sortArgs(parts)
	return node(OpAdd, w, parts...)
}

// Add returns the canonical sum of its operands.
func Add(args ...*Expr) *Expr {
	if len(args) == 0 {
		panic("expr: Add of nothing")
	}
	w := args[0].Width
	acc := map[string]linTerm{}
	konst := uint64(0)
	for _, a := range args {
		checkSame(args[0], a)
		t, c := linearize(a)
		konst += c
		for k, v := range t {
			u := acc[k]
			u.base = v.base
			u.coeff += v.coeff
			acc[k] = u
		}
	}
	return rebuildLinear(w, acc, konst)
}

// Sub returns a - b in canonical linear form.
func Sub(a, b *Expr) *Expr {
	checkSame(a, b)
	return Add(a, Neg(b))
}

// Neg returns two's-complement negation, represented as multiplication by
// the all-ones constant so it participates in the linear normal form.
func Neg(a *Expr) *Expr {
	return Mul(Const(a.Width, Mask(a.Width)), a)
}

// Mul returns the canonical product of its operands. A constant factor is
// folded; a constant multiplied over a sum distributes (this lines up
// shifted-index addressing with scaled-index addressing).
func Mul(args ...*Expr) *Expr {
	if len(args) == 0 {
		panic("expr: Mul of nothing")
	}
	w := args[0].Width
	c := uint64(1)
	var rest []*Expr
	var flat func(e *Expr)
	flat = func(e *Expr) {
		if v, ok := e.ConstVal(); ok {
			c *= v
			return
		}
		if e.Kind == KNode && e.Op == OpMul {
			for _, a := range e.Args {
				flat(a)
			}
			return
		}
		rest = append(rest, e)
	}
	for _, a := range args {
		checkSame(args[0], a)
		flat(a)
	}
	c = truncate(c, w)
	if c == 0 {
		return Const(w, 0)
	}
	if len(rest) == 0 {
		return Const(w, c)
	}
	// Distribute a constant over a single additive operand so that
	// (x+y)*4 joins the linear normal form as x*4 + y*4.
	if len(rest) == 1 {
		if rest[0].Kind == KNode && rest[0].Op == OpAdd {
			terms, k := linearize(rest[0])
			for key, t := range terms {
				t.coeff *= c
				terms[key] = t
			}
			return rebuildLinear(w, terms, k*c)
		}
		if c == 1 {
			return rest[0]
		}
		sortArgs(rest)
		return node(OpMul, w, Const(w, c), rest[0])
	}
	sortArgs(rest)
	if c != 1 {
		rest = append([]*Expr{Const(w, c)}, rest...)
	}
	if len(rest) == 1 {
		return rest[0]
	}
	return node(OpMul, w, rest...)
}

// bitwiseNary canonicalizes And/Or/Xor: flatten, fold constants, dedupe.
func bitwiseNary(op Op, args []*Expr) *Expr {
	w := args[0].Width
	full := Mask(w)
	var acc uint64
	switch op {
	case OpAnd:
		acc = full
	case OpOr, OpXor:
		acc = 0
	}
	seen := map[string]int{} // key -> occurrence count (for xor pairing)
	var rest []*Expr
	var flat func(e *Expr)
	flat = func(e *Expr) {
		if v, ok := e.ConstVal(); ok {
			switch op {
			case OpAnd:
				acc &= v
			case OpOr:
				acc |= v
			case OpXor:
				acc ^= v
			}
			return
		}
		if e.Kind == KNode && e.Op == op {
			for _, a := range e.Args {
				flat(a)
			}
			return
		}
		seen[e.Key()]++
		rest = append(rest, e)
	}
	for _, a := range args {
		checkSame(args[0], a)
		flat(a)
	}
	// Dedupe: idempotent for and/or, self-cancelling for xor.
	var uniq []*Expr
	used := map[string]bool{}
	for _, e := range rest {
		k := e.Key()
		if used[k] {
			continue
		}
		used[k] = true
		if op == OpXor {
			if seen[k]%2 == 0 {
				continue
			}
		}
		uniq = append(uniq, e)
	}
	switch op {
	case OpAnd:
		if acc == 0 {
			return Const(w, 0)
		}
		if len(uniq) == 0 {
			return Const(w, acc)
		}
		if acc == full && len(uniq) == 1 {
			return uniq[0]
		}
		sortArgs(uniq)
		if acc != full {
			uniq = append([]*Expr{Const(w, acc)}, uniq...)
		}
		return node(OpAnd, w, uniq...)
	case OpOr:
		if acc == full {
			return Const(w, full)
		}
		if len(uniq) == 0 {
			return Const(w, acc)
		}
		if acc == 0 && len(uniq) == 1 {
			return uniq[0]
		}
		sortArgs(uniq)
		if acc != 0 {
			uniq = append([]*Expr{Const(w, acc)}, uniq...)
		}
		return node(OpOr, w, uniq...)
	default: // OpXor
		if len(uniq) == 0 {
			return Const(w, acc)
		}
		if acc == 0 && len(uniq) == 1 {
			return uniq[0]
		}
		// x ^ all-ones = not(x): keep as Not for canonical form.
		if acc == full && len(uniq) == 1 {
			return Not(uniq[0])
		}
		sortArgs(uniq)
		if acc != 0 {
			uniq = append([]*Expr{Const(w, acc)}, uniq...)
		}
		return node(OpXor, w, uniq...)
	}
}

// And returns the canonical bitwise AND of its operands.
func And(args ...*Expr) *Expr { return bitwiseNary(OpAnd, args) }

// Or returns the canonical bitwise OR of its operands.
func Or(args ...*Expr) *Expr { return bitwiseNary(OpOr, args) }

// Xor returns the canonical bitwise XOR of its operands.
func Xor(args ...*Expr) *Expr { return bitwiseNary(OpXor, args) }

// Not returns the bitwise complement.
func Not(a *Expr) *Expr {
	if v, ok := a.ConstVal(); ok {
		return Const(a.Width, ^v)
	}
	if a.Kind == KNode && a.Op == OpNot {
		return a.Args[0]
	}
	return node(OpNot, a.Width, a)
}

// Shl returns a << b. A constant shift becomes multiplication by a power of
// two so shifted and scaled index expressions normalize identically.
func Shl(a, b *Expr) *Expr {
	checkSame(a, b)
	w := a.Width
	if sv, ok := b.ConstVal(); ok {
		if sv >= uint64(w) {
			return Const(w, 0)
		}
		return Mul(a, Const(w, uint64(1)<<sv))
	}
	return node(OpShl, w, a, b)
}

// LShr returns the logical right shift a >> b.
func LShr(a, b *Expr) *Expr {
	checkSame(a, b)
	w := a.Width
	if sv, ok := b.ConstVal(); ok {
		if sv >= uint64(w) {
			return Const(w, 0)
		}
		if av, ok := a.ConstVal(); ok {
			return Const(w, av>>sv)
		}
		if sv == 0 {
			return a
		}
	}
	return node(OpLShr, w, a, b)
}

// AShr returns the arithmetic right shift a >> b.
func AShr(a, b *Expr) *Expr {
	checkSame(a, b)
	w := a.Width
	if sv, ok := b.ConstVal(); ok {
		if av, ok := a.ConstVal(); ok {
			if sv >= uint64(w) {
				sv = uint64(w - 1)
			}
			return Const(w, uint64(signExtVal(av, w)>>sv))
		}
		if sv == 0 {
			return a
		}
	}
	return node(OpAShr, w, a, b)
}

// UDiv returns unsigned division a / b, with a/0 = all-ones.
func UDiv(a, b *Expr) *Expr {
	checkSame(a, b)
	w := a.Width
	if bv, ok := b.ConstVal(); ok {
		if av, ok2 := a.ConstVal(); ok2 {
			if bv == 0 {
				return Const(w, Mask(w))
			}
			return Const(w, av/bv)
		}
		if bv == 1 {
			return a
		}
	}
	return node(OpUDiv, w, a, b)
}

// SDiv returns signed division a / b, with a/0 = all-ones.
func SDiv(a, b *Expr) *Expr {
	checkSame(a, b)
	w := a.Width
	if bv, ok := b.ConstVal(); ok {
		if av, ok2 := a.ConstVal(); ok2 {
			if bv == 0 {
				return Const(w, Mask(w))
			}
			sa, sb := signExtVal(av, w), signExtVal(bv, w)
			if sb == 0 {
				return Const(w, Mask(w))
			}
			return Const(w, uint64(sa/sb))
		}
		if bv == 1 {
			return a
		}
	}
	return node(OpSDiv, w, a, b)
}

// URem returns the unsigned remainder a % b, with a%0 = a.
func URem(a, b *Expr) *Expr {
	checkSame(a, b)
	w := a.Width
	if bv, ok := b.ConstVal(); ok {
		if av, ok2 := a.ConstVal(); ok2 {
			if bv == 0 {
				return Const(w, av)
			}
			return Const(w, av%bv)
		}
		if bv == 1 {
			return Const(w, 0)
		}
	}
	return node(OpURem, w, a, b)
}

// Eq returns the width-1 equality a == b, normalized to (a-b) == 0 so that
// syntactically different but linearly equal comparisons coincide.
func Eq(a, b *Expr) *Expr {
	checkSame(a, b)
	d := Sub(a, b)
	if v, ok := d.ConstVal(); ok {
		if v == 0 {
			return True
		}
		return False
	}
	return node(OpEq, 1, d, Const(a.Width, 0))
}

// Ne returns the width-1 disequality.
func Ne(a, b *Expr) *Expr { return Not(Eq(a, b)) }

// Ult returns the width-1 unsigned less-than.
func Ult(a, b *Expr) *Expr {
	checkSame(a, b)
	if av, ok := a.ConstVal(); ok {
		if bv, ok2 := b.ConstVal(); ok2 {
			if av < bv {
				return True
			}
			return False
		}
	}
	if Equal(a, b) {
		return False
	}
	return node(OpUlt, 1, a, b)
}

// Slt returns the width-1 signed less-than.
func Slt(a, b *Expr) *Expr {
	checkSame(a, b)
	if av, ok := a.ConstVal(); ok {
		if bv, ok2 := b.ConstVal(); ok2 {
			if signExtVal(av, a.Width) < signExtVal(bv, b.Width) {
				return True
			}
			return False
		}
	}
	if Equal(a, b) {
		return False
	}
	return node(OpSlt, 1, a, b)
}

// Ule returns unsigned a <= b.
func Ule(a, b *Expr) *Expr { return Not(Ult(b, a)) }

// Sle returns signed a <= b.
func Sle(a, b *Expr) *Expr { return Not(Slt(b, a)) }

// Ugt returns unsigned a > b.
func Ugt(a, b *Expr) *Expr { return Ult(b, a) }

// Sgt returns signed a > b.
func Sgt(a, b *Expr) *Expr { return Slt(b, a) }

// ITE returns if c then a else b.
func ITE(c, a, b *Expr) *Expr {
	if c.Width != 1 {
		panic("expr: ITE condition must have width 1")
	}
	checkSame(a, b)
	if v, ok := c.ConstVal(); ok {
		if v == 1 {
			return a
		}
		return b
	}
	if Equal(a, b) {
		return a
	}
	// Normalize ITE(not c, a, b) -> ITE(c, b, a).
	if c.Kind == KNode && c.Op == OpNot {
		return ITE(c.Args[0], b, a)
	}
	return node(OpITE, a.Width, c, a, b)
}

// Extract returns bits hi..lo (inclusive) of a, a (hi-lo+1)-bit value.
// Low-bit extracts push through the operators whose low bits depend only on
// their operands' low bits (add, mul, and, or, xor, not, and the extension
// operators), so the wide carry-computation forms produced by the symbolic
// executors canonicalize back to narrow linear forms.
func Extract(a *Expr, hi, lo int) *Expr {
	if hi < lo || lo < 0 || hi >= a.Width {
		panic(fmt.Sprintf("expr: bad extract [%d:%d] of width %d", hi, lo, a.Width))
	}
	w := hi - lo + 1
	if w == a.Width {
		return a
	}
	if v, ok := a.ConstVal(); ok {
		return Const(w, v>>uint(lo))
	}
	if a.Kind == KNode && a.Op == OpExtract {
		return Extract(a.Args[0], a.Lo+hi, a.Lo+lo)
	}
	if lo == 0 && a.Kind == KNode {
		switch a.Op {
		case OpAdd, OpMul, OpAnd, OpOr, OpXor:
			args := make([]*Expr, len(a.Args))
			for i, x := range a.Args {
				args[i] = Extract(x, hi, 0)
			}
			return Rebuild(&Expr{Kind: KNode, Op: a.Op, Width: w}, args)
		case OpNot:
			return Not(Extract(a.Args[0], hi, 0))
		case OpZeroExt:
			inner := a.Args[0]
			if hi < inner.Width {
				return Extract(inner, hi, 0)
			}
			return ZeroExt(inner, w)
		case OpSignExt:
			inner := a.Args[0]
			if hi < inner.Width {
				return Extract(inner, hi, 0)
			}
		}
	}
	e := node(OpExtract, w, a)
	e.Hi, e.Lo = hi, lo
	return e
}

// ZeroExt zero-extends a to width w. Extending the low k bits of a same-width
// value is rewritten to an AND mask so movzbl-style idioms and and-mask
// idioms canonicalize identically.
func ZeroExt(a *Expr, w int) *Expr {
	checkWidth(w)
	if w < a.Width {
		panic("expr: ZeroExt narrows")
	}
	if w == a.Width {
		return a
	}
	if v, ok := a.ConstVal(); ok {
		return Const(w, v)
	}
	if a.Kind == KNode && a.Op == OpExtract && a.Lo == 0 && a.Args[0].Width == w {
		return And(a.Args[0], Const(w, Mask(a.Width)))
	}
	return node(OpZeroExt, w, a)
}

// SignExt sign-extends a to width w.
func SignExt(a *Expr, w int) *Expr {
	checkWidth(w)
	if w < a.Width {
		panic("expr: SignExt narrows")
	}
	if w == a.Width {
		return a
	}
	if v, ok := a.ConstVal(); ok {
		return Const(w, uint64(signExtVal(v, a.Width)))
	}
	return node(OpSignExt, w, a)
}

// Concat returns hi ++ lo with width hi.Width+lo.Width.
func Concat(hi, lo *Expr) *Expr {
	w := hi.Width + lo.Width
	checkWidth(w)
	if hv, ok := hi.ConstVal(); ok {
		if lv, ok2 := lo.ConstVal(); ok2 {
			return Const(w, hv<<uint(lo.Width)|lv)
		}
		if hv == 0 {
			return ZeroExt(lo, w)
		}
	}
	return node(OpConcat, w, hi, lo)
}

// BoolToBV widens a width-1 expression to w bits (0 or 1).
func BoolToBV(c *Expr, w int) *Expr {
	if c.Width != 1 {
		panic("expr: BoolToBV wants width-1 input")
	}
	return ZeroExt(c, w)
}

// Eval computes the concrete value of e under env, which maps symbol names
// to 64-bit values (truncated to each symbol's width on use). Eval panics on
// a symbol missing from env; use Syms to pre-populate.
func (e *Expr) Eval(env map[string]uint64) uint64 {
	switch e.Kind {
	case KConst:
		return e.Val
	case KSym:
		v, ok := env[e.Name]
		if !ok {
			panic(fmt.Sprintf("expr: unbound symbol %q", e.Name))
		}
		return truncate(v, e.Width)
	}
	w := e.Width
	switch e.Op {
	case OpAdd:
		var s uint64
		for _, a := range e.Args {
			s += a.Eval(env)
		}
		return truncate(s, w)
	case OpMul:
		p := uint64(1)
		for _, a := range e.Args {
			p *= a.Eval(env)
		}
		return truncate(p, w)
	case OpAnd:
		s := Mask(w)
		for _, a := range e.Args {
			s &= a.Eval(env)
		}
		return s
	case OpOr:
		var s uint64
		for _, a := range e.Args {
			s |= a.Eval(env)
		}
		return s
	case OpXor:
		var s uint64
		for _, a := range e.Args {
			s ^= a.Eval(env)
		}
		return s
	case OpNot:
		return truncate(^e.Args[0].Eval(env), w)
	case OpShl:
		s := e.Args[1].Eval(env)
		if s >= uint64(w) {
			return 0
		}
		return truncate(e.Args[0].Eval(env)<<s, w)
	case OpLShr:
		s := e.Args[1].Eval(env)
		if s >= uint64(w) {
			return 0
		}
		return e.Args[0].Eval(env) >> s
	case OpAShr:
		s := e.Args[1].Eval(env)
		if s >= uint64(w) {
			s = uint64(w - 1)
		}
		return truncate(uint64(signExtVal(e.Args[0].Eval(env), w)>>s), w)
	case OpUDiv:
		b := e.Args[1].Eval(env)
		if b == 0 {
			return Mask(w)
		}
		return e.Args[0].Eval(env) / b
	case OpSDiv:
		b := signExtVal(e.Args[1].Eval(env), w)
		if b == 0 {
			return Mask(w)
		}
		a := signExtVal(e.Args[0].Eval(env), w)
		return truncate(uint64(a/b), w)
	case OpURem:
		b := e.Args[1].Eval(env)
		if b == 0 {
			return e.Args[0].Eval(env)
		}
		return e.Args[0].Eval(env) % b
	case OpEq:
		if e.Args[0].Eval(env) == e.Args[1].Eval(env) {
			return 1
		}
		return 0
	case OpUlt:
		if e.Args[0].Eval(env) < e.Args[1].Eval(env) {
			return 1
		}
		return 0
	case OpSlt:
		aw := e.Args[0].Width
		if signExtVal(e.Args[0].Eval(env), aw) < signExtVal(e.Args[1].Eval(env), aw) {
			return 1
		}
		return 0
	case OpITE:
		if e.Args[0].Eval(env) == 1 {
			return e.Args[1].Eval(env)
		}
		return e.Args[2].Eval(env)
	case OpExtract:
		return truncate(e.Args[0].Eval(env)>>uint(e.Lo), w)
	case OpZeroExt:
		return e.Args[0].Eval(env)
	case OpSignExt:
		return truncate(uint64(signExtVal(e.Args[0].Eval(env), e.Args[0].Width)), w)
	case OpConcat:
		return truncate(e.Args[0].Eval(env)<<uint(e.Args[1].Width)|e.Args[1].Eval(env), w)
	}
	panic(fmt.Sprintf("expr: Eval of unknown op %s", e.Op))
}

// Syms appends the distinct symbol names reachable from e into set.
func (e *Expr) Syms(set map[string]int) {
	switch e.Kind {
	case KConst:
	case KSym:
		if _, ok := set[e.Name]; !ok {
			set[e.Name] = e.Width
		}
	default:
		for _, a := range e.Args {
			a.Syms(set)
		}
	}
}

// Subst returns e with every symbol named in m replaced by its mapping.
// Substitution re-runs the canonicalizing constructors, so the result is
// simplified with respect to the substituted values.
func (e *Expr) Subst(m map[string]*Expr) *Expr {
	switch e.Kind {
	case KConst:
		return e
	case KSym:
		if r, ok := m[e.Name]; ok {
			if r.Width != e.Width {
				panic(fmt.Sprintf("expr: Subst width mismatch for %s", e.Name))
			}
			return r
		}
		return e
	}
	args := make([]*Expr, len(e.Args))
	changed := false
	for i, a := range e.Args {
		args[i] = a.Subst(m)
		if args[i] != a {
			changed = true
		}
	}
	if !changed {
		return e
	}
	return Rebuild(e, args)
}

// Rebuild reconstructs a node like e but with new arguments, re-running the
// canonicalizing constructor for its operator.
func Rebuild(e *Expr, args []*Expr) *Expr {
	switch e.Op {
	case OpAdd:
		return Add(args...)
	case OpMul:
		return Mul(args...)
	case OpAnd:
		return And(args...)
	case OpOr:
		return Or(args...)
	case OpXor:
		return Xor(args...)
	case OpNot:
		return Not(args[0])
	case OpShl:
		return Shl(args[0], args[1])
	case OpLShr:
		return LShr(args[0], args[1])
	case OpAShr:
		return AShr(args[0], args[1])
	case OpUDiv:
		return UDiv(args[0], args[1])
	case OpSDiv:
		return SDiv(args[0], args[1])
	case OpURem:
		return URem(args[0], args[1])
	case OpEq:
		// Stored normalized as (d == 0); rebuild the same way.
		if v, ok := args[1].ConstVal(); ok && v == 0 {
			return Eq(args[0], Const(args[0].Width, 0))
		}
		return Eq(args[0], args[1])
	case OpUlt:
		return Ult(args[0], args[1])
	case OpSlt:
		return Slt(args[0], args[1])
	case OpITE:
		return ITE(args[0], args[1], args[2])
	case OpExtract:
		return Extract(args[0], e.Hi, e.Lo)
	case OpZeroExt:
		return ZeroExt(args[0], e.Width)
	case OpSignExt:
		return SignExt(args[0], e.Width)
	case OpConcat:
		return Concat(args[0], args[1])
	}
	panic(fmt.Sprintf("expr: Rebuild of unknown op %s", e.Op))
}

// Size returns the number of nodes in e (for cost heuristics and tests).
func (e *Expr) Size() int {
	n := 1
	for _, a := range e.Args {
		n += a.Size()
	}
	return n
}

// Log2 returns (k, true) when v == 1<<k, else (0, false).
func Log2(v uint64) (int, bool) {
	if v != 0 && v&(v-1) == 0 {
		return bits.TrailingZeros64(v), true
	}
	return 0, false
}
