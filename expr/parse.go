package expr

import (
	"fmt"
	"strconv"
)

// ParseKey parses the canonical serialization produced by Key back into an
// expression (re-running the canonicalizing constructors). It is the basis
// of rule-file round-tripping.
func ParseKey(s string) (*Expr, error) {
	p := &keyParser{s: s}
	e, err := p.parse()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.s) {
		return nil, fmt.Errorf("expr: trailing input %q", p.s[p.pos:])
	}
	return e, nil
}

// MustParseKey is ParseKey that panics on error.
func MustParseKey(s string) *Expr {
	e, err := ParseKey(s)
	if err != nil {
		panic(err)
	}
	return e
}

type keyParser struct {
	s   string
	pos int
}

func (p *keyParser) skipSpace() {
	for p.pos < len(p.s) && p.s[p.pos] == ' ' {
		p.pos++
	}
}

func (p *keyParser) parse() (*Expr, error) {
	p.skipSpace()
	if p.pos >= len(p.s) {
		return nil, fmt.Errorf("expr: unexpected end of key")
	}
	switch p.s[p.pos] {
	case '#':
		p.pos++
		w, err := p.readInt(':')
		if err != nil {
			return nil, err
		}
		v, err := p.readUint()
		if err != nil {
			return nil, err
		}
		if w < 1 || w > 64 {
			return nil, fmt.Errorf("expr: bad width %d", w)
		}
		return Const(w, v), nil
	case '$':
		p.pos++
		w, err := p.readInt(':')
		if err != nil {
			return nil, err
		}
		name := p.readName()
		if name == "" {
			return nil, fmt.Errorf("expr: empty symbol name at %d", p.pos)
		}
		if w < 1 || w > 64 {
			return nil, fmt.Errorf("expr: bad width %d", w)
		}
		return Sym(w, name), nil
	case '(':
		return p.parseNode()
	}
	return nil, fmt.Errorf("expr: unexpected %q at %d", p.s[p.pos], p.pos)
}

func (p *keyParser) parseNode() (*Expr, error) {
	p.pos++ // consume '('
	opName := p.readName()
	var op Op
	found := false
	for i, n := range opNames {
		if n == opName {
			op = Op(i)
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("expr: unknown op %q", opName)
	}
	if p.pos >= len(p.s) || p.s[p.pos] != ':' {
		return nil, fmt.Errorf("expr: missing width for %s", opName)
	}
	p.pos++
	w := 0
	for p.pos < len(p.s) && p.s[p.pos] >= '0' && p.s[p.pos] <= '9' {
		w = w*10 + int(p.s[p.pos]-'0')
		p.pos++
	}
	hi, lo := -1, -1
	if op == OpExtract {
		if p.pos >= len(p.s) || p.s[p.pos] != '[' {
			return nil, fmt.Errorf("expr: extract missing bounds")
		}
		p.pos++
		var err error
		hi, err = p.readInt(':')
		if err != nil {
			return nil, err
		}
		lo, err = p.readInt(']')
		if err != nil {
			return nil, err
		}
	}
	var args []*Expr
	for {
		p.skipSpace()
		if p.pos >= len(p.s) {
			return nil, fmt.Errorf("expr: unterminated node")
		}
		if p.s[p.pos] == ')' {
			p.pos++
			break
		}
		a, err := p.parse()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
	}
	if len(args) == 0 {
		return nil, fmt.Errorf("expr: %s with no arguments", opName)
	}
	tmpl := &Expr{Kind: KNode, Op: op, Width: w, Hi: hi, Lo: lo}
	return Rebuild(tmpl, args), nil
}

func (p *keyParser) readInt(term byte) (int, error) {
	start := p.pos
	if p.pos < len(p.s) && p.s[p.pos] == '-' {
		p.pos++
	}
	for p.pos < len(p.s) && p.s[p.pos] >= '0' && p.s[p.pos] <= '9' {
		p.pos++
	}
	v, err := strconv.Atoi(p.s[start:p.pos])
	if err != nil {
		return 0, fmt.Errorf("expr: bad integer at %d", start)
	}
	if p.pos >= len(p.s) || p.s[p.pos] != term {
		return 0, fmt.Errorf("expr: expected %q at %d", term, p.pos)
	}
	p.pos++
	return v, nil
}

func (p *keyParser) readUint() (uint64, error) {
	start := p.pos
	for p.pos < len(p.s) && p.s[p.pos] >= '0' && p.s[p.pos] <= '9' {
		p.pos++
	}
	v, err := strconv.ParseUint(p.s[start:p.pos], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("expr: bad unsigned at %d", start)
	}
	return v, nil
}

func (p *keyParser) readName() string {
	start := p.pos
	for p.pos < len(p.s) {
		c := p.s[p.pos]
		if c == ' ' || c == '(' || c == ')' || c == ':' || c == '[' {
			break
		}
		p.pos++
	}
	return p.s[start:p.pos]
}
