package expr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstFolding(t *testing.T) {
	cases := []struct {
		name string
		got  *Expr
		want uint64
	}{
		{"add", Add(Const(32, 7), Const(32, 8)), 15},
		{"add wrap", Add(Const(32, 0xffffffff), Const(32, 1)), 0},
		{"sub", Sub(Const(32, 7), Const(32, 8)), 0xffffffff},
		{"mul", Mul(Const(32, 6), Const(32, 7)), 42},
		{"and", And(Const(32, 0xf0f0), Const(32, 0xff00)), 0xf000},
		{"or", Or(Const(32, 0xf0f0), Const(32, 0x0f00)), 0xfff0},
		{"xor", Xor(Const(32, 0xff), Const(32, 0x0f)), 0xf0},
		{"not", Not(Const(32, 0)), 0xffffffff},
		{"shl", Shl(Const(32, 1), Const(32, 4)), 16},
		{"shl out", Shl(Const(32, 1), Const(32, 32)), 0},
		{"lshr", LShr(Const(32, 0x80000000), Const(32, 31)), 1},
		{"ashr", AShr(Const(32, 0x80000000), Const(32, 31)), 0xffffffff},
		{"udiv", UDiv(Const(32, 42), Const(32, 7)), 6},
		{"udiv0", UDiv(Const(32, 42), Const(32, 0)), 0xffffffff},
		{"sdiv", SDiv(Const(32, 0xfffffffa), Const(32, 2)), 0xfffffffd},
		{"urem", URem(Const(32, 43), Const(32, 7)), 1},
		{"neg", Neg(Const(32, 1)), 0xffffffff},
		{"extract", Extract(Const(32, 0xabcd), 7, 0), 0xcd},
		{"zext", ZeroExt(Const(8, 0xcd), 32), 0xcd},
		{"sext", SignExt(Const(8, 0xcd), 32), 0xffffffcd},
		{"concat", Concat(Const(8, 0xab), Const(8, 0xcd)), 0xabcd},
	}
	for _, c := range cases {
		v, ok := c.got.ConstVal()
		if !ok {
			t.Errorf("%s: expected constant, got %s", c.name, c.got)
			continue
		}
		if v != c.want {
			t.Errorf("%s: got %#x want %#x", c.name, v, c.want)
		}
	}
}

func TestLinearNormalForm(t *testing.T) {
	x := Sym(32, "x")
	y := Sym(32, "y")

	// (x + y) - y == x
	if got := Sub(Add(x, y), y); !Equal(got, x) {
		t.Errorf("(x+y)-y = %s, want x", got)
	}
	// x + x == 2*x == x*2 == x<<1
	two := Add(x, x)
	if !Equal(two, Mul(Const(32, 2), x)) {
		t.Errorf("x+x != 2x: %s", two)
	}
	if !Equal(two, Shl(x, Const(32, 1))) {
		t.Errorf("x+x != x<<1: %s vs %s", two, Shl(x, Const(32, 1)))
	}
	// The paper's lea case: (y + (x << 2)) - 4 == y + x*4 + (-4).
	guest := Sub(Add(y, Shl(x, Const(32, 2))), Const(32, 4))
	host := Add(y, Mul(x, Const(32, 4)), Const(32, Mask(32)-3)) // -4
	if !Equal(guest, host) {
		t.Errorf("lea forms differ:\n  %s\n  %s", guest, host)
	}
	// Distribution: (x+y)*4 == x*4 + y*4.
	if !Equal(Mul(Add(x, y), Const(32, 4)), Add(Mul(x, Const(32, 4)), Mul(y, Const(32, 4)))) {
		t.Error("const distribution over sum failed")
	}
	// Commutativity canonicalization.
	if !Equal(Add(x, y), Add(y, x)) {
		t.Error("add not commutative-canonical")
	}
	if !Equal(Mul(x, y), Mul(y, x)) {
		t.Error("mul not commutative-canonical")
	}
}

func TestBitwiseCanonical(t *testing.T) {
	x := Sym(32, "x")
	y := Sym(32, "y")
	if !Equal(And(x, y), And(y, x)) {
		t.Error("and not commutative-canonical")
	}
	if !Equal(And(x, x), x) {
		t.Error("and not idempotent")
	}
	if got := Xor(x, x); !got.IsConst(0) {
		t.Errorf("x^x = %s, want 0", got)
	}
	if !Equal(Or(x, Const(32, 0)), x) {
		t.Error("or identity failed")
	}
	if got := And(x, Const(32, 0)); !got.IsConst(0) {
		t.Errorf("x&0 = %s", got)
	}
	if !Equal(Xor(x, Const(32, 0xffffffff)), Not(x)) {
		t.Error("x^~0 != not x")
	}
	if !Equal(Not(Not(x)), x) {
		t.Error("double negation failed")
	}
}

func TestMovzblEquivalence(t *testing.T) {
	// movzbl %al,%eax == and $255,%eax  (paper Figure 3b).
	x := Sym(32, "x")
	movz := ZeroExt(Extract(x, 7, 0), 32)
	andm := And(x, Const(32, 0xff))
	if !Equal(movz, andm) {
		t.Errorf("movzbl canonicalization failed: %s vs %s", movz, andm)
	}
}

func TestCompareNormalization(t *testing.T) {
	a := Sym(32, "a")
	b := Sym(32, "b")
	// a == b normalizes to (a-b) == 0, same as b == a? No: b-a = -(a-b);
	// those keys differ, but Eq(a,b) and Ne-of-same must be stable.
	e1 := Eq(a, b)
	e2 := Eq(a, b)
	if !Equal(e1, e2) {
		t.Error("Eq not deterministic")
	}
	if got := Eq(a, a); !got.IsConst(1) {
		t.Errorf("a==a not folded: %s", got)
	}
	if got := Ne(a, a); !got.IsConst(0) {
		t.Errorf("a!=a not folded: %s", got)
	}
	if got := Ult(a, a); !got.IsConst(0) {
		t.Errorf("a<a not folded: %s", got)
	}
	// cmp r2,r3;bne  vs  cmpl b,a;jne  — both (a-b)!=0 after substitution.
	g := Ne(Sub(a, b), Const(32, 0))
	h := Ne(a, b)
	if !Equal(g, h) {
		t.Errorf("branch conditions differ: %s vs %s", g, h)
	}
}

func TestITE(t *testing.T) {
	c := Sym(1, "c")
	x := Sym(32, "x")
	y := Sym(32, "y")
	if !Equal(ITE(True, x, y), x) || !Equal(ITE(False, x, y), y) {
		t.Error("constant ITE not folded")
	}
	if !Equal(ITE(c, x, x), x) {
		t.Error("ITE same-arms not folded")
	}
	if !Equal(ITE(Not(c), x, y), ITE(c, y, x)) {
		t.Error("ITE not-condition not normalized")
	}
}

func TestSubst(t *testing.T) {
	x := Sym(32, "x")
	y := Sym(32, "y")
	e := Add(x, Mul(y, Const(32, 4)))
	got := e.Subst(map[string]*Expr{"x": Const(32, 8), "y": Const(32, 2)})
	if !got.IsConst(16) {
		t.Errorf("subst result %s, want 16", got)
	}
	// Renaming substitution.
	r := e.Subst(map[string]*Expr{"x": Sym(32, "ecx"), "y": Sym(32, "eax")})
	want := Add(Sym(32, "ecx"), Mul(Sym(32, "eax"), Const(32, 4)))
	if !Equal(r, want) {
		t.Errorf("rename got %s want %s", r, want)
	}
}

// randExpr builds a random well-formed expression over syms at width w.
func randExpr(r *rand.Rand, depth, w int) *Expr {
	if depth <= 0 || r.Intn(4) == 0 {
		switch r.Intn(3) {
		case 0:
			return Const(w, r.Uint64())
		default:
			return Sym(w, []string{"x", "y", "z"}[r.Intn(3)])
		}
	}
	a := randExpr(r, depth-1, w)
	b := randExpr(r, depth-1, w)
	switch r.Intn(12) {
	case 0:
		return Add(a, b)
	case 1:
		return Sub(a, b)
	case 2:
		return Mul(a, b)
	case 3:
		return And(a, b)
	case 4:
		return Or(a, b)
	case 5:
		return Xor(a, b)
	case 6:
		return Not(a)
	case 7:
		return Shl(a, Const(w, uint64(r.Intn(w))))
	case 8:
		return LShr(a, Const(w, uint64(r.Intn(w))))
	case 9:
		return AShr(a, Const(w, uint64(r.Intn(w))))
	case 10:
		return ITE(Eq(a, b), a, b)
	default:
		return Neg(a)
	}
}

// TestSimplifierPreservesEval is the core property: canonicalization must
// never change the value of an expression. We compare a "raw" evaluation
// strategy (rebuild with constructors in a different grouping) against the
// original under many random environments.
func TestSimplifierPreservesEval(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		e := randExpr(r, 4, 32)
		// Rebuilding through Subst with identity mappings re-runs every
		// constructor; the result must evaluate identically.
		re := e.Subst(map[string]*Expr{"x": Sym(32, "x")})
		for j := 0; j < 16; j++ {
			env := map[string]uint64{
				"x": r.Uint64(), "y": r.Uint64(), "z": r.Uint64(),
			}
			if e.Eval(env) != re.Eval(env) {
				t.Fatalf("iter %d: eval mismatch\n e=%s\nre=%s", i, e, re)
			}
		}
	}
}

func TestQuickAddSubRoundTrip(t *testing.T) {
	f := func(a, b uint32) bool {
		x := Const(32, uint64(a))
		y := Const(32, uint64(b))
		return Sub(Add(x, y), y).IsConst(uint64(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickEvalMatchesGo(t *testing.T) {
	x := Sym(32, "x")
	y := Sym(32, "y")
	e := Add(Mul(x, Const(32, 3)), Xor(y, Const(32, 0x5a5a5a5a)))
	f := func(a, b uint32) bool {
		env := map[string]uint64{"x": uint64(a), "y": uint64(b)}
		want := uint64(a*3+(b^0x5a5a5a5a)) & 0xffffffff
		return e.Eval(env) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSymsAndSize(t *testing.T) {
	e := Add(Sym(32, "a"), Mul(Sym(32, "b"), Const(32, 4)))
	set := map[string]int{}
	e.Syms(set)
	if len(set) != 2 || set["a"] != 32 || set["b"] != 32 {
		t.Errorf("Syms = %v", set)
	}
	if e.Size() < 3 {
		t.Errorf("Size = %d", e.Size())
	}
}

func TestLog2(t *testing.T) {
	if k, ok := Log2(8); !ok || k != 3 {
		t.Errorf("Log2(8) = %d,%v", k, ok)
	}
	if _, ok := Log2(12); ok {
		t.Error("Log2(12) should fail")
	}
	if _, ok := Log2(0); ok {
		t.Error("Log2(0) should fail")
	}
}

func TestWidthPanics(t *testing.T) {
	assertPanics := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	assertPanics("width 0", func() { Const(0, 1) })
	assertPanics("width 65", func() { Sym(65, "x") })
	assertPanics("mismatch", func() { Add(Sym(32, "x"), Sym(16, "y")) })
	assertPanics("bad extract", func() { Extract(Sym(32, "x"), 32, 0) })
	assertPanics("narrowing zext", func() { ZeroExt(Sym(32, "x"), 8) })
}

func TestExtractPushdown(t *testing.T) {
	a := Sym(32, "a")
	b := Sym(32, "b")
	// The 33-bit carry form used by the symbolic executors must fold back
	// to the 32-bit linear form.
	wide := Add(ZeroExt(a, 33), ZeroExt(Not(b), 33), ZeroExt(True, 33))
	low := Extract(wide, 31, 0)
	want := Sub(a, b)
	if !Equal(low, want) {
		t.Errorf("carry-form pushdown failed:\n got %s\nwant %s", low, want)
	}
	// The carry bit itself must stay wide.
	carry := Extract(wide, 32, 32)
	if carry.Width != 1 {
		t.Errorf("carry width %d", carry.Width)
	}
	// Pushdown through mul/and/or/xor/not.
	if got := Extract(Mul(ZeroExt(a, 64), ZeroExt(b, 64)), 31, 0); !Equal(got, Mul(a, b)) {
		t.Errorf("mul pushdown: %s", got)
	}
	if got := Extract(Not(ZeroExt(a, 40)), 31, 0); !Equal(got, Not(a)) {
		t.Errorf("not pushdown: %s", got)
	}
	// SignExt: low bits equal the operand's low bits.
	if got := Extract(SignExt(Sym(8, "c"), 32), 7, 0); !Equal(got, Sym(8, "c")) {
		t.Errorf("sext pushdown: %s", got)
	}
}

func TestNotLinearization(t *testing.T) {
	a := Sym(32, "a")
	b := Sym(32, "b")
	// a + ~b + 1 == a - b (two's complement subtraction).
	got := Add(a, Not(b), Const(32, 1))
	if !Equal(got, Sub(a, b)) {
		t.Errorf("a + ~b + 1 = %s, want %s", got, Sub(a, b))
	}
	// ~a == -a - 1 inside sums.
	if !Equal(Add(Not(a), Const(32, 1)), Neg(a)) {
		t.Error("~a + 1 != -a")
	}
}

func TestParseKeyRoundTrip(t *testing.T) {
	exprs := []*Expr{
		Const(32, 42),
		Sym(8, "al"),
		Add(Sym(32, "x"), Mul(Sym(32, "y"), Const(32, 4))),
		Not(And(Sym(32, "x"), Const(32, 255))),
		ITE(Eq(Sym(32, "x"), Const(32, 0)), Sym(32, "y"), Sym(32, "z")),
		Extract(Sym(32, "x"), 15, 8),
		ZeroExt(Sym(8, "b"), 32),
		SignExt(Sym(8, "b"), 32),
		Concat(Sym(8, "hi"), Sym(8, "lo")),
		Ult(Sym(32, "x"), Sym(32, "y")),
		Slt(Sym(32, "x"), Sym(32, "y")),
		LShr(Sym(32, "x"), Sym(32, "y")),
		AShr(Sym(32, "x"), Sym(32, "y")),
		UDiv(Sym(32, "x"), Sym(32, "y")),
		URem(Sym(32, "x"), Sym(32, "y")),
	}
	for _, e := range exprs {
		back, err := ParseKey(e.Key())
		if err != nil {
			t.Errorf("ParseKey(%q): %v", e.Key(), err)
			continue
		}
		if !Equal(e, back) {
			t.Errorf("round trip %q -> %q", e.Key(), back.Key())
		}
	}
}

func TestParseKeyRandomRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for i := 0; i < 300; i++ {
		e := randExpr(r, 4, 32)
		back, err := ParseKey(e.Key())
		if err != nil {
			t.Fatalf("ParseKey(%q): %v", e.Key(), err)
		}
		if !Equal(e, back) {
			t.Fatalf("round trip %q -> %q", e.Key(), back.Key())
		}
	}
}

func TestParseKeyErrors(t *testing.T) {
	for _, bad := range []string{
		"", "#32", "$32:", "(add:32", "(bogus:32 #32:1)", "#99:1",
		"(add:32 #32:1) trailing", "(extract:8 $32:x)",
	} {
		if _, err := ParseKey(bad); err == nil {
			t.Errorf("ParseKey(%q): expected error", bad)
		}
	}
}

// TestComparisonConstructors checks every comparison builder against Go
// semantics under concrete evaluation, including the constant-folding
// paths.
func TestComparisonConstructors(t *testing.T) {
	x := Sym(32, "x")
	y := Sym(32, "y")
	cases := []struct {
		name string
		e    *Expr
		want func(a, b uint32) bool
	}{
		{"ult", Ult(x, y), func(a, b uint32) bool { return a < b }},
		{"ule", Ule(x, y), func(a, b uint32) bool { return a <= b }},
		{"ugt", Ugt(x, y), func(a, b uint32) bool { return a > b }},
		{"slt", Slt(x, y), func(a, b uint32) bool { return int32(a) < int32(b) }},
		{"sle", Sle(x, y), func(a, b uint32) bool { return int32(a) <= int32(b) }},
		{"sgt", Sgt(x, y), func(a, b uint32) bool { return int32(a) > int32(b) }},
		{"eq", Eq(x, y), func(a, b uint32) bool { return a == b }},
	}
	vals := []uint32{0, 1, 2, 0x7fffffff, 0x80000000, 0xfffffffe, 0xffffffff}
	for _, c := range cases {
		for _, a := range vals {
			for _, b := range vals {
				env := map[string]uint64{"x": uint64(a), "y": uint64(b)}
				got := c.e.Eval(env) != 0
				if got != c.want(a, b) {
					t.Errorf("%s(%#x, %#x) = %v, want %v", c.name, a, b, got, !got)
				}
			}
		}
	}
	// Constant folding: comparisons of constants must fold to 0/1.
	if v, ok := Ult(Const(32, 3), Const(32, 5)).ConstVal(); !ok || v != 1 {
		t.Error("Ult constant fold failed")
	}
	if v, ok := Sgt(Const(32, 0xffffffff), Const(32, 0)).ConstVal(); !ok || v != 0 {
		t.Error("Sgt constant fold failed (-1 > 0)")
	}
	b2v := BoolToBV(Ult(x, y), 32)
	env := map[string]uint64{"x": 1, "y": 2}
	if b2v.Eval(env) != 1 {
		t.Error("BoolToBV eval failed")
	}
}

// TestMustParseKey covers the panicking wrapper and n-ary mul keys.
func TestMustParseKey(t *testing.T) {
	for _, e := range []*Expr{
		Mul(Const(32, 3), Sym(32, "a"), Sym(32, "b")),
		Or(Sym(32, "a"), Const(32, 0xff00)),
	} {
		if !Equal(e, MustParseKey(e.Key())) {
			t.Errorf("round-trip of %s failed", e.Key())
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("MustParseKey should panic on malformed keys")
		}
	}()
	MustParseKey("(bogus")
}
