package corpus

import (
	"testing"

	"dbtrules/codegen"
	"dbtrules/minc"
)

// TestAllBenchmarksCompileAndRun: every benchmark must parse, compile for
// all style/level combinations, and agree across the AST evaluator and
// both compiled targets on the test workload.
func TestAllBenchmarksCompileAndRun(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			p, err := minc.Parse(b.Source)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			ev := minc.NewEvaluator(p)
			want, err := ev.Call("bench", b.TestN, 12345)
			if err != nil {
				t.Fatalf("eval: %v", err)
			}
			for _, style := range []codegen.Style{codegen.StyleLLVM, codegen.StyleGCC} {
				for lvl := 0; lvl <= 2; lvl++ {
					g, h, err := b.Compile(codegen.Options{Style: style, OptLevel: lvl})
					if err != nil {
						t.Fatalf("%s-O%d: %v", style, lvl, err)
					}
					gr, _, err := g.RunARM(nil, "bench", []uint32{uint32(b.TestN), 12345}, 500_000_000)
					if err != nil {
						t.Fatalf("%s-O%d ARM: %v", style, lvl, err)
					}
					if int32(gr) != want {
						t.Fatalf("%s-O%d ARM: got %d want %d", style, lvl, int32(gr), want)
					}
					hr, _, err := h.RunX86(nil, "bench", []uint32{uint32(b.TestN), 12345}, 500_000_000)
					if err != nil {
						t.Fatalf("%s-O%d x86: %v", style, lvl, err)
					}
					if int32(hr) != want {
						t.Fatalf("%s-O%d x86: got %d want %d", style, lvl, int32(hr), want)
					}
				}
			}
		})
	}
}

func TestBenchmarkSizesTrackSuite(t *testing.T) {
	big, _ := ByName("gcc")
	small, _ := ByName("mcf")
	if len(big.Source) < 4*len(small.Source) {
		t.Errorf("gcc source (%d bytes) should dwarf mcf (%d bytes)", len(big.Source), len(small.Source))
	}
	if _, ok := ByName("nonesuch"); ok {
		t.Error("ByName(nonesuch) should fail")
	}
	if len(All()) != 12 {
		t.Fatalf("corpus has %d benchmarks", len(All()))
	}
}

func TestWorkloadScales(t *testing.T) {
	for _, b := range All() {
		if b.RefN <= b.TestN {
			t.Errorf("%s: ref workload (%d) must exceed test (%d)", b.Name, b.RefN, b.TestN)
		}
	}
}
