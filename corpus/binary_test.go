package corpus

import (
	"testing"

	"dbtrules/arm"
	"dbtrules/codegen"
	"dbtrules/x86"
)

// TestWholeProgramEncodeDecode: every instruction of every compiled corpus
// binary must survive the machine-code round trip — the encoders are
// length-accurate and the decoders total over generated code.
func TestWholeProgramEncodeDecode(t *testing.T) {
	for i := range All() {
		b := &All()[i]
		g, h, err := b.Compile(codegen.Options{Style: codegen.StyleLLVM, OptLevel: 2})
		if err != nil {
			t.Fatal(err)
		}
		for idx, in := range g.Code {
			w, err := arm.Encode(in)
			if err != nil {
				t.Fatalf("%s: ARM encode @%d (%s): %v", b.Name, idx, in, err)
			}
			dec, err := arm.Decode(w)
			if err != nil {
				t.Fatalf("%s: ARM decode @%d (%s = %#08x): %v", b.Name, idx, in, w, err)
			}
			want := in
			want.Line = 0
			if want.Op.IsCompare() {
				want.Rd = 0
				want.SetFlags = true
			}
			if dec != want {
				t.Fatalf("%s: ARM @%d: %s -> %#08x -> %s", b.Name, idx, in, w, dec)
			}
		}
		for idx, in := range h.Code {
			enc, err := x86.Encode(in)
			if err != nil {
				t.Fatalf("%s: x86 encode @%d (%s): %v", b.Name, idx, in, err)
			}
			dec, n, err := x86.Decode(enc)
			if err != nil {
				t.Fatalf("%s: x86 decode @%d (%s = %x): %v", b.Name, idx, in, enc, err)
			}
			if n != len(enc) {
				t.Fatalf("%s: x86 @%d: consumed %d of %d", b.Name, idx, n, len(enc))
			}
			want := in
			want.Line = 0
			if want.Src.Kind == x86.KMem && want.Src.Mem.HasIndex && want.Src.Mem.Scale == 0 {
				want.Src.Mem.Scale = 1
			}
			if want.Dst.Kind == x86.KMem && want.Dst.Mem.HasIndex && want.Dst.Mem.Scale == 0 {
				want.Dst.Mem.Scale = 1
			}
			if dec != want {
				t.Fatalf("%s: x86 @%d: %s -> %x -> %s", b.Name, idx, in, enc, dec)
			}
		}
		// Code-size statistics should favour the CISC encoding, mildly.
		gBytes, hBytes := g.CodeBytes(), h.CodeBytes()
		if hBytes <= 0 || gBytes <= 0 {
			t.Fatalf("%s: degenerate code sizes %d/%d", b.Name, gBytes, hBytes)
		}
	}
}
