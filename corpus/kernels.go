package corpus

// Domain-flavored kernels. Every kernel has the signature
// `int kernel(int a, int b)` and terminates in a bounded number of steps.

const kernelPerlbench = `
int hashstr(int h, int c) {
	h = h * 33 + (c & 255);
	h = h ^ (h >> 13);
	return h;
}

int kernel(int a, int b) {
	int i;
	int h = 5381;
	int len = (a & 31) + 8;
	for (i = 0; i < len; i++) {
		bytes[i & 255] = a + i * b;
		h = hashstr(h, bytes[i & 255]);
	}
	int bucket = h & 255;
	tab[bucket] = tab[bucket] + 1;
	if (tab[bucket] > 64) {
		tab[bucket] = 0;
		total = total + 1;
	}
	return h + tab[bucket];
}
`

const kernelBzip2 = `
int kernel(int a, int b) {
	int i;
	int run = 0;
	int out = 0;
	int prev = -1;
	for (i = 0; i < 48; i++) {
		int c = (a + i * b) & 255;
		bytes[i & 255] = c;
		if (c == prev) {
			run = run + 1;
			if (run == 4) {
				out = out + 2;
				run = 0;
			}
		} else {
			out = out + 1;
			run = 1;
		}
		prev = c;
	}
	int rank = 0;
	for (i = 0; i < 16; i++) {
		int v = bytes[i];
		if (v < (b & 255)) {
			rank = rank + 1;
		}
	}
	total = total + out;
	return out * 256 + rank;
}
`

const kernelGCC = `
int fold(int op, int x, int y) {
	if (op == 0) {
		return x + y;
	}
	if (op == 1) {
		return x - y;
	}
	if (op == 2) {
		return x & y;
	}
	if (op == 3) {
		return x | y;
	}
	if (op == 4) {
		return x ^ y;
	}
	return x * y;
}

int kernel(int a, int b) {
	int i;
	int acc = a;
	for (i = 0; i < 24; i++) {
		int op = (a + i) % 8;
		if (op > 5) {
			op = op - 5;
		}
		acc = fold(op, acc, b + i);
		tab[(acc >> 4) & 255] = acc;
	}
	int pressure = 0;
	for (i = 0; i < 12; i++) {
		int v = tab[i * 8];
		int w = aux[i & 127];
		pressure = pressure + (v ^ w) - (v & w);
		aux[i & 127] = pressure;
	}
	return acc + pressure;
}
`

const kernelMCF = `
int kernel(int a, int b) {
	int i;
	int cost = 0;
	for (i = 0; i < 64; i++) {
		int cur = tab[i & 255];
		int alt = tab[(i + 1) & 255] + (b & 15) + 1;
		if (alt < cur || cur == 0) {
			tab[i & 255] = alt;
			cost = cost + alt;
		} else {
			cost = cost + cur;
		}
	}
	int flow = a;
	for (i = 0; i < 32; i++) {
		int cap = aux[i & 127] & 63;
		if (flow > cap) {
			flow = flow - cap;
			aux[i & 127] = cap + 1;
		}
	}
	total = total + cost;
	return cost + flow;
}
`

const kernelGobmk = `
int liberties(int pos, int color) {
	int n = 0;
	if ((tab[(pos + 1) & 255] & 3) == 0) {
		n = n + 1;
	}
	if ((tab[(pos + 255) & 255] & 3) == 0) {
		n = n + 1;
	}
	if ((tab[(pos + 16) & 255] & 3) == color) {
		n = n + 1;
	}
	return n;
}

int kernel(int a, int b) {
	int i;
	int score = 0;
	int color = (b & 1) + 1;
	for (i = 0; i < 40; i++) {
		int pos = (a * 7 + i * 13) & 255;
		tab[pos] = (tab[pos] + color) & 3;
		int lib = liberties(pos, color);
		if (lib == 0) {
			tab[pos] = 0;
			score = score - 2;
		} else {
			score = score + lib;
		}
	}
	return score + a - b;
}
`

const kernelHmmer = `
int kernel(int a, int b) {
	int i;
	int m = a & 1023;
	int d = 0;
	int x = b & 1023;
	for (i = 0; i < 56; i++) {
		int e = bytes[i & 255] + (i << 2);
		int m2 = m + e;
		int d2 = m - (e >> 1);
		int x2 = x + (e & 15);
		if (d2 > m2) {
			m2 = d2;
		}
		if (x2 > m2) {
			m2 = x2;
		}
		m = m2;
		d = d2 + 1;
		x = x2 - 1;
		aux[i & 127] = m;
	}
	total = total + m;
	return m + d + x;
}
`

const kernelSjeng = `
int evalpos(int p, int depth) {
	int v = tab[p & 255];
	int s = v * 4 - (v >> 2);
	if (depth > 0) {
		int child = (p * 5 + depth) & 255;
		int sub = tab[child] - depth;
		if (sub > s) {
			s = sub;
		}
	}
	return s;
}

int kernel(int a, int b) {
	int best = -100000;
	int beta = (b & 1023) + 2048;
	int i;
	for (i = 0; i < 28; i++) {
		int move = (a + i * 17) & 255;
		if ((tab[move] & 7) == 7) {
			continue;
		}
		int score = evalpos(move, b & 3);
		score = score - (i & 7);
		if (score > best) {
			best = score;
			head = move;
		}
		tab[move] = (tab[move] + score) & 4095;
		if (best >= beta) {
			break;
		}
	}
	return best + head;
}
`

const kernelLibquantum = `
int kernel(int a, int b) {
	int i;
	int phase = 0;
	int target = (b & 7) + 1;
	for (i = 0; i < 64; i++) {
		int amp = tab[i & 255];
		if ((i & target) != 0) {
			amp = -amp + (a & 63);
		}
		amp = amp ^ (amp >> 4);
		tab[i & 255] = amp & 65535;
		phase = phase + (amp & 3);
	}
	int gate = 0;
	for (i = 0; i < 16; i++) {
		gate = gate ^ aux[(i * 5) & 127];
		aux[(i * 5) & 127] = gate + i;
	}
	return phase * 16 + (gate & 15);
}
`

const kernelH264 = `
int sad4(int base, int off) {
	int s = 0;
	int k;
	for (k = 0; k < 4; k++) {
		int d = bytes[(base + k) & 255] - bytes[(off + k) & 255];
		if (d < 0) {
			d = -d;
		}
		s = s + d;
	}
	return s;
}

int kernel(int a, int b) {
	int bestsad = 100000;
	int bestmv = 0;
	int mv;
	for (mv = 0; mv < 24; mv++) {
		int s = sad4(a & 255, (a + mv * 4 + b) & 255);
		s = s + ((mv & 3) << 1);
		if (s < bestsad) {
			bestsad = s;
			bestmv = mv;
		}
	}
	bytes[(a + bestmv) & 255] = bestsad;
	total = total + bestsad;
	return bestmv * 256 + (bestsad & 255);
}
`

const kernelOmnetpp = `
int kernel(int a, int b) {
	int i;
	int now = a & 4095;
	int processed = 0;
	for (i = 0; i < 32; i++) {
		int slot = (head + i) & 127;
		int due = aux[slot];
		if (due <= now && due != 0) {
			aux[slot] = 0;
			processed = processed + 1;
			int next = now + ((b + i * 3) & 31) + 1;
			aux[(slot + processed) & 127] = next;
		}
	}
	head = (head + processed) & 127;
	if (processed == 0) {
		aux[head] = now + 1;
	}
	return processed * 64 + head;
}
`

const kernelAstar = `
int kernel(int a, int b) {
	int sx = a & 15;
	int sy = (a >> 4) & 15;
	int gx = b & 15;
	int gy = (b >> 4) & 15;
	int steps = 0;
	int x = sx;
	int y = sy;
	while ((x != gx || y != gy) && steps < 40) {
		int dx = gx - x;
		int dy = gy - y;
		int cost = tab[((y << 4) + x) & 255] & 7;
		if (dx > 0) {
			x = x + 1;
		} else if (dx < 0) {
			x = x - 1;
		} else if (dy > 0) {
			y = y + 1;
		} else {
			y = y - 1;
		}
		steps = steps + 1 + cost;
		tab[((y << 4) + x) & 255] = cost + 1;
	}
	return steps * 16 + x + y;
}
`

const kernelXalancbmk = `
int classify(int c) {
	if (c < 32) {
		return 0;
	}
	if (c == 60 || c == 62) {
		return 1;
	}
	if (c == 38) {
		return 2;
	}
	if (c >= 48 && c <= 57) {
		return 3;
	}
	return 4;
}

int kernel(int a, int b) {
	int i;
	int depth = 0;
	int nodes = 0;
	int state = 0;
	for (i = 0; i < 48; i++) {
		int c = (a * 31 + i * b) & 127;
		int cls = classify(c);
		if (cls == 1) {
			if (state == 0) {
				depth = depth + 1;
				nodes = nodes + 1;
				state = 1;
			} else {
				if (depth > 0) {
					depth = depth - 1;
				}
				state = 0;
			}
		} else if (cls == 3) {
			state = state + (c & 1);
		}
		bytes[(nodes + i) & 255] = c;
	}
	tab[depth & 255] = nodes;
	return nodes * 256 + depth * 16 + state;
}
`
