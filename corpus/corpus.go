// Package corpus provides the twelve synthetic benchmark programs that
// stand in for SPEC CINT2006. Each mirrors its namesake's application
// domain in a hand-written kernel (string hashing for perlbench, block
// coding for bzip2, graph relaxation for mcf, board scanning for gobmk,
// dynamic programming for hmmer, search for sjeng/astar, state-vector
// simulation for libquantum, motion-estimation-like loops for h264ref,
// event queues for omnetpp, and table-driven dispatch for gcc/xalancbmk)
// and is padded with deterministically generated filler functions so the
// programs' relative code sizes roughly track the suite's (gcc and
// xalancbmk largest, mcf and libquantum smallest).
//
// Every program exports `int bench(int n, int seed)`: `n` scales the
// running time, giving the paper's short `test` and long `ref` workloads.
package corpus

import (
	"fmt"
	"strings"

	"dbtrules/codegen"
	"dbtrules/minc"
	"dbtrules/prog"
)

// Benchmark is one corpus program with its two workloads.
type Benchmark struct {
	Name     string
	Lang     string // "C" or "C++" (cosmetic, mirroring Table 1)
	Source   string
	TestN    int32 // short-running workload argument
	RefN     int32 // long-running workload argument
	KLoC     float64
	FillerFn int // number of generated filler functions
}

// Compile builds the guest/host pair for the given options.
func (b *Benchmark) Compile(opts codegen.Options) (*prog.ARM, *prog.X86, error) {
	opts.SourceName = b.Name
	p, err := minc.Parse(b.Source)
	if err != nil {
		return nil, nil, fmt.Errorf("corpus %s: %v", b.Name, err)
	}
	return codegen.Compile(p, opts)
}

// specs mirrors Table 1's benchmark list: name, language, KLoC, and the
// filler-function count scaling our synthetic source accordingly.
var specs = []struct {
	name   string
	lang   string
	kloc   float64
	filler int
	testN  int32
	refN   int32
	kernel string
}{
	{"perlbench", "C", 128, 48, 32, 1600, kernelPerlbench},
	{"bzip2", "C", 5.7, 4, 48, 2800, kernelBzip2},
	{"gcc", "C", 386, 96, 24, 1200, kernelGCC},
	{"mcf", "C", 1.6, 1, 64, 3600, kernelMCF},
	{"gobmk", "C", 158, 56, 32, 1520, kernelGobmk},
	{"hmmer", "C", 40.7, 18, 40, 2200, kernelHmmer},
	{"sjeng", "C", 10.5, 6, 40, 2400, kernelSjeng},
	{"libquantum", "C", 2.6, 1, 64, 4000, kernelLibquantum},
	{"h264ref", "C", 36, 16, 32, 2000, kernelH264},
	{"omnetpp", "C++", 26.7, 12, 40, 2200, kernelOmnetpp},
	{"astar", "C++", 4.3, 2, 48, 2800, kernelAstar},
	{"xalancbmk", "C++", 267, 72, 24, 1400, kernelXalancbmk},
}

var cache []Benchmark

// All returns the twelve benchmarks (sources are built once and cached).
func All() []Benchmark {
	if cache != nil {
		return cache
	}
	for _, s := range specs {
		src := buildSource(s.name, s.kernel, s.filler)
		cache = append(cache, Benchmark{
			Name: s.name, Lang: s.lang, Source: src,
			TestN: s.testN, RefN: s.refN, KLoC: s.kloc, FillerFn: s.filler,
		})
	}
	return cache
}

// ByName returns one benchmark.
func ByName(name string) (*Benchmark, bool) {
	for i := range All() {
		if All()[i].Name == name {
			return &All()[i], true
		}
	}
	return nil, false
}

// buildSource assembles globals + kernel + fillers + the bench driver.
func buildSource(name, kernel string, filler int) string {
	var b strings.Builder
	b.WriteString(commonGlobals)
	b.WriteString(kernel)
	rng := uint32(hashName(name))
	for i := 0; i < filler; i++ {
		b.WriteString(genFiller(i, &rng))
	}
	// The driver touches the kernel every iteration and a rotating filler
	// function so filler code is warm but kernel-dominated (the hot-loop
	// locality that drives the paper's dynamic coverage).
	b.WriteString("\nint bench(int n, int seed) {\n")
	b.WriteString("\tint acc = seed;\n")
	b.WriteString("\tint it;\n")
	b.WriteString("\tfor (it = 0; it < n; it++) {\n")
	b.WriteString("\t\tacc = kernel(acc + it, seed ^ it);\n")
	if filler > 0 {
		b.WriteString(fmt.Sprintf("\t\tif (it %% 16 == 0) {\n\t\t\tacc += filler%d(acc, it);\n\t\t}\n", 0))
		if filler > 1 {
			b.WriteString(fmt.Sprintf("\t\tif (it %% 64 == 1) {\n\t\t\tacc += filler%d(acc, it);\n\t\t}\n", 1))
		}
	}
	b.WriteString("\t}\n\treturn acc;\n}\n")
	return b.String()
}

const commonGlobals = `
int tab[256];
int aux[128];
char bytes[256];
int head;
int total;
`

func hashName(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h | 1
}

// genFiller emits one deterministic filler function exercising a rotating
// set of statement patterns; the shared pattern pool is what lets rules
// learned from one benchmark cover another (leave-one-out transfer).
func genFiller(i int, rng *uint32) string {
	next := func(n uint32) uint32 {
		*rng = *rng*1664525 + 1013904223
		return (*rng >> 8) % n
	}
	var b strings.Builder
	fmt.Fprintf(&b, "\nint filler%d(int a, int b) {\n", i)
	b.WriteString("\tint x = a;\n\tint y = b;\n")
	stmts := 4 + int(next(8))
	for s := 0; s < stmts; s++ {
		switch next(22) {
		case 0:
			fmt.Fprintf(&b, "\tx = x + y - %d;\n", 1+next(30))
		case 1:
			fmt.Fprintf(&b, "\ty = (x << %d) + y;\n", 1+next(3))
		case 2:
			fmt.Fprintf(&b, "\tx = x & %d;\n", []uint32{255, 63, 127, 1023}[next(4)])
		case 3:
			fmt.Fprintf(&b, "\ty = y | %d;\n", 1<<next(12))
		case 4:
			fmt.Fprintf(&b, "\tx = x ^ y;\n")
		case 5:
			fmt.Fprintf(&b, "\ttab[y & 255] = x;\n")
		case 6:
			fmt.Fprintf(&b, "\tx = tab[x & 255] + %d;\n", next(16))
		case 7:
			fmt.Fprintf(&b, "\tbytes[x & 255] = y;\n")
		case 8:
			fmt.Fprintf(&b, "\ty = y + bytes[y & 255];\n")
		case 9:
			fmt.Fprintf(&b, "\tif (x > y) {\n\t\tx = x - y;\n\t}\n")
		case 10:
			fmt.Fprintf(&b, "\tx = x * %d + y;\n", 3+next(5))
		case 11:
			fmt.Fprintf(&b, "\ty = x >> %d;\n", 1+next(4))
		case 12:
			fmt.Fprintf(&b, "\tx = x + aux[y & 127];\n")
		case 13:
			fmt.Fprintf(&b, "\ttotal = total + x;\n")
		// Compound statements: the many-to-one material (a whole source
		// line of guest code collapsing into a couple of host
		// instructions is where rules buy the most).
		case 14:
			fmt.Fprintf(&b, "\tx = tab[(x + y) & 255] + (y >> %d);\n", 1+next(4))
		case 15:
			fmt.Fprintf(&b, "\ttab[(x + %d) & 255] = tab[x & 255] + y;\n", 1+next(7))
		case 16:
			fmt.Fprintf(&b, "\tx = (x & 1023) + (y & 63) + %d;\n", 1+next(15))
		case 17:
			fmt.Fprintf(&b, "\tbytes[(x + y) & 255] = bytes[x & 255] + 1;\n")
		case 18:
			fmt.Fprintf(&b, "\ty = aux[(x + %d) & 127] + (x << %d) - y;\n", next(32), 1+next(3))
		case 19:
			fmt.Fprintf(&b, "\ttotal = total + tab[y & 255] + %d;\n", 1+next(20))
		// Comparison values lower to predicated moves on ARM at -O2 —
		// Table 1's PI preparation bucket.
		case 20:
			fmt.Fprintf(&b, "\tx = x + (y > %d);\n", next(64))
		case 21:
			fmt.Fprintf(&b, "\ty = (x == y) + (y & %d);\n", 1+next(31))
		}
	}
	b.WriteString("\treturn x ^ y;\n}\n")
	return b.String()
}
