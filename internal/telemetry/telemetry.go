// Package telemetry is the engine's observability subsystem: live
// metrics (lock-free counters, gauges, and fixed-bucket latency
// histograms), a bounded ring-buffer event tracer, and an opt-in HTTP
// exporter serving Prometheus text format, a JSON snapshot, and
// net/http/pprof (see http.go).
//
// A *Registry is injectable: the engine, the rule store, and the learner
// each accept one and instrument themselves only when it is set AND
// armed. The disarmed fast path follows the same discipline as
// internal/faultinject — one atomic load (Armed) guards every recording
// site, so a registry can stay attached to a production engine at no
// measurable cost and be armed on demand (e.g. by the HTTP exporter's
// /arm endpoint). A nil registry is cheaper still: instrumented code
// holds pre-resolved metric handles and skips everything on a nil check,
// which is how the deterministic golden-stats and differential tests run
// bit-identical to the un-instrumented engine.
//
// Metric names follow Prometheus conventions (snake_case, _total
// suffixes on counters, _ns on nanosecond quantities); labels are baked
// into the name with Label, e.g.
//
//	reg.Counter(telemetry.Label("learn_phase_ns_total", "phase", "verify", "worker", "3"))
//
// Registration is idempotent and serialized; the returned handles are
// lock-free and safe for concurrent use.
package telemetry

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing lock-free counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a lock-free instantaneous value (e.g. a version counter).
type Gauge struct{ v atomic.Uint64 }

// Set stores n.
func (g *Gauge) Set(n uint64) { g.v.Store(n) }

// Load returns the current value.
func (g *Gauge) Load() uint64 { return g.v.Load() }

// Histogram bucket layout: fixed exponential nanosecond buckets. Bucket i
// holds observations with d < 1<<(histMinExp+i+1) ns; the first bucket
// absorbs everything below 1<<(histMinExp+1) ns and the last is the
// +Inf overflow. 24 buckets spanning 512ns .. ~4.3s cover every latency
// this system produces (a Store.Add is microseconds, a whole-corpus
// Freeze is milliseconds).
const (
	histMinExp     = 8 // smallest bucket upper bound: 1<<9 = 512ns
	histNumBuckets = 24
)

// Histogram is a lock-free fixed-bucket latency histogram.
type Histogram struct {
	count   atomic.Uint64
	sumNS   atomic.Uint64
	buckets [histNumBuckets]atomic.Uint64
}

// bucketIndex maps a nanosecond duration to its bucket.
func bucketIndex(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	// bits.Len64(ns) is the exponent of the smallest power of two > ns.
	i := bits.Len64(uint64(ns)) - histMinExp - 1
	if i < 0 {
		return 0
	}
	if i >= histNumBuckets {
		return histNumBuckets - 1
	}
	return i
}

// BucketBound returns bucket i's inclusive upper bound in nanoseconds,
// or -1 for the overflow bucket.
func BucketBound(i int) int64 {
	if i >= histNumBuckets-1 {
		return -1
	}
	return 1<<(histMinExp+i+1) - 1
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sumNS.Add(uint64(ns))
	h.buckets[bucketIndex(ns)].Add(1)
}

// ObserveSince records the elapsed time since t0.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0)) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// SumNS returns the total observed nanoseconds.
func (h *Histogram) SumNS() uint64 { return h.sumNS.Load() }

// HistogramSnapshot is the JSON form of a histogram.
type HistogramSnapshot struct {
	Count uint64 `json:"count"`
	SumNS uint64 `json:"sum_ns"`
	// Buckets maps the inclusive nanosecond upper bound ("+Inf" for the
	// overflow bucket) to the count of observations at or under it that
	// landed in that bucket (non-cumulative). Empty buckets are omitted.
	Buckets map[string]uint64 `json:"buckets,omitempty"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), SumNS: h.sumNS.Load()}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if s.Buckets == nil {
			s.Buckets = map[string]uint64{}
		}
		key := "+Inf"
		if b := BucketBound(i); b >= 0 {
			key = fmt.Sprint(b)
		}
		s.Buckets[key] = n
	}
	return s
}

// Registry holds a process's (or one subsystem's) metrics and trace ring.
// The zero Registry is not usable; call New.
type Registry struct {
	armed atomic.Bool

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	trace *Ring
}

// New returns an armed registry with a trace ring of the given capacity
// (rounded up to a power of two; cap <= 0 selects the 4096-event
// default).
func New(traceCap int) *Registry {
	r := &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		trace:    newRing(traceCap),
	}
	r.armed.Store(true)
	return r
}

// Armed reports whether recording is enabled. Every instrumentation
// site's disarmed cost is exactly this atomic load.
func (r *Registry) Armed() bool { return r != nil && r.armed.Load() }

// Arm enables recording.
func (r *Registry) Arm() { r.armed.Store(true) }

// Disarm disables recording. Metric handles stay valid; their values
// freeze until the registry is re-armed.
func (r *Registry) Disarm() { r.armed.Store(false) }

// Counter returns (registering on first use) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (registering on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (registering on first use) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Label bakes a label set into a metric name: Label("x_total", "k", "v")
// is `x_total{k="v"}`. Pairs must alternate key, value.
func Label(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// Snapshot is the JSON form of a registry: every registered metric plus
// (optionally) the trace ring contents.
type Snapshot struct {
	Armed      bool                         `json:"armed"`
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]uint64            `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Events     []Event                      `json:"events,omitempty"`
}

// Snapshot captures every metric. Metrics mutate concurrently, so the
// snapshot is per-metric atomic, not globally consistent — fine for
// monitoring, not for differential testing.
func (r *Registry) Snapshot(withEvents bool) Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{Armed: r.armed.Load(), Counters: map[string]uint64{}}
	for n, c := range r.counters {
		s.Counters[n] = c.Load()
	}
	for n, g := range r.gauges {
		if s.Gauges == nil {
			s.Gauges = map[string]uint64{}
		}
		s.Gauges[n] = g.Load()
	}
	for n, h := range r.hists {
		if s.Histograms == nil {
			s.Histograms = map[string]HistogramSnapshot{}
		}
		s.Histograms[n] = h.snapshot()
	}
	if withEvents {
		s.Events = r.trace.Events()
	}
	return s
}

// splitLabels separates a Label-baked name into base name and the label
// body (without braces); body is "" when the name has no labels.
func splitLabels(name string) (base, body string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format, deterministically ordered by name.
func (r *Registry) WritePrometheus(w *strings.Builder) {
	r.mu.Lock()
	defer r.mu.Unlock()

	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	lastBase := ""
	for _, n := range names {
		base, _ := splitLabels(n)
		if base != lastBase {
			fmt.Fprintf(w, "# TYPE %s counter\n", base)
			lastBase = base
		}
		fmt.Fprintf(w, "%s %d\n", n, r.counters[n].Load())
	}

	names = names[:0]
	for n := range r.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	lastBase = ""
	for _, n := range names {
		base, _ := splitLabels(n)
		if base != lastBase {
			fmt.Fprintf(w, "# TYPE %s gauge\n", base)
			lastBase = base
		}
		fmt.Fprintf(w, "%s %d\n", n, r.gauges[n].Load())
	}

	names = names[:0]
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := r.hists[n]
		base, body := splitLabels(n)
		fmt.Fprintf(w, "# TYPE %s histogram\n", base)
		cum := uint64(0)
		for i := range h.buckets {
			cum += h.buckets[i].Load()
			le := "+Inf"
			if b := BucketBound(i); b >= 0 {
				le = fmt.Sprint(b)
			}
			labels := fmt.Sprintf("le=%q", le)
			if body != "" {
				labels = body + "," + labels
			}
			fmt.Fprintf(w, "%s_bucket{%s} %d\n", base, labels, cum)
		}
		suffix := ""
		if body != "" {
			suffix = "{" + body + "}"
		}
		fmt.Fprintf(w, "%s_sum%s %d\n", base, suffix, h.sumNS.Load())
		fmt.Fprintf(w, "%s_count%s %d\n", base, suffix, h.count.Load())
	}
}
