package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"
)

// Handler returns the exporter mux for a registry:
//
//	/metrics        Prometheus text exposition format
//	/snapshot.json  JSON snapshot of every metric (?events=1 appends the trace ring)
//	/trace.json     the trace ring contents, oldest-first; ?ev=KIND[,KIND...]
//	                keeps only the named event kinds (e.g. ?ev=dispatch)
//	/arm, /disarm   toggle recording at runtime (POST or GET)
//	/debug/pprof/*  the standard net/http/pprof profiling handlers
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		var b strings.Builder
		r.WritePrometheus(&b)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, b.String())
	})
	mux.HandleFunc("/snapshot.json", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, r.Snapshot(req.URL.Query().Get("events") == "1"))
	})
	mux.HandleFunc("/trace.json", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, FilterEvents(r.Events(), req.URL.Query().Get("ev")))
	})
	mux.HandleFunc("/arm", func(w http.ResponseWriter, _ *http.Request) {
		r.Arm()
		fmt.Fprintln(w, "armed")
	})
	mux.HandleFunc("/disarm", func(w http.ResponseWriter, _ *http.Request) {
		r.Disarm()
		fmt.Fprintln(w, "disarmed")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// FilterEvents keeps the events whose kind name appears in the
// comma-separated filter (the /trace.json ?ev= syntax). An empty filter
// keeps everything; unknown kind names simply match nothing. The
// returned slice is always non-nil so the endpoint serializes an empty
// ring as [] rather than null.
func FilterEvents(evs []Event, filter string) []Event {
	if filter == "" {
		if evs == nil {
			evs = []Event{}
		}
		return evs
	}
	want := map[string]bool{}
	for _, k := range strings.Split(filter, ",") {
		if k = strings.TrimSpace(k); k != "" {
			want[k] = true
		}
	}
	out := make([]Event, 0, len(evs))
	for _, e := range evs {
		if want[e.KindName] {
			out = append(out, e)
		}
	}
	return out
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Server is a running exporter.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the exporter down immediately.
func (s *Server) Close() error { return s.srv.Close() }

// Serve starts the exporter for reg on addr (e.g. "127.0.0.1:9090", or
// port 0 for an ephemeral port — read the bound address back with Addr)
// and serves in a background goroutine until Close.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: reg.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{srv: srv, ln: ln}, nil
}
