package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeConcurrent(t *testing.T) {
	reg := New(0)
	c := reg.Counter("x_total")
	g := reg.Gauge("x_version")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				c.Add(2)
				g.Set(uint64(i))
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 8*1000*3 {
		t.Errorf("counter = %d, want %d", got, 8*1000*3)
	}
	if g.Load() != 999 {
		t.Errorf("gauge = %d, want 999", g.Load())
	}
	// Registration is idempotent: same handle back.
	if reg.Counter("x_total") != c {
		t.Error("re-registration returned a different counter")
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := New(0)
	h := reg.Histogram("lat_ns")
	h.Observe(0)                     // first bucket
	h.Observe(100 * time.Nanosecond) // still first bucket (< 512ns)
	h.Observe(600 * time.Nanosecond) // second bucket
	h.Observe(time.Hour)             // overflow bucket
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	wantSum := uint64(100 + 600 + time.Hour.Nanoseconds())
	if h.SumNS() != wantSum {
		t.Errorf("sum = %d, want %d", h.SumNS(), wantSum)
	}
	s := h.snapshot()
	if s.Buckets["511"] != 2 {
		t.Errorf("first bucket = %d, want 2 (buckets: %v)", s.Buckets["511"], s.Buckets)
	}
	if s.Buckets["1023"] != 1 {
		t.Errorf("second bucket = %d, want 1 (buckets: %v)", s.Buckets["1023"], s.Buckets)
	}
	if s.Buckets["+Inf"] != 1 {
		t.Errorf("overflow bucket = %d, want 1 (buckets: %v)", s.Buckets["+Inf"], s.Buckets)
	}
}

func TestBucketIndexBounds(t *testing.T) {
	// Every bucket's inclusive upper bound must land in that bucket, and
	// the next nanosecond in the next one.
	for i := 0; i < histNumBuckets-1; i++ {
		b := BucketBound(i)
		if got := bucketIndex(b); got != i {
			t.Errorf("bucketIndex(%d) = %d, want %d", b, got, i)
		}
		if got := bucketIndex(b + 1); got != i+1 {
			t.Errorf("bucketIndex(%d) = %d, want %d", b+1, got, i+1)
		}
	}
	if bucketIndex(-5) != 0 {
		t.Error("negative duration must land in bucket 0")
	}
}

func TestArmDisarm(t *testing.T) {
	var nilReg *Registry
	if nilReg.Armed() {
		t.Error("nil registry reports armed")
	}
	reg := New(0)
	if !reg.Armed() {
		t.Error("fresh registry is disarmed")
	}
	reg.Disarm()
	if reg.Armed() {
		t.Error("Disarm did not take")
	}
	reg.Trace(EvTranslate, 1, -1, 0) // dropped while disarmed
	if reg.TraceTotal() != 0 {
		t.Error("disarmed Trace recorded an event")
	}
	reg.Arm()
	reg.Trace(EvTranslate, 1, -1, 0)
	if reg.TraceTotal() != 1 {
		t.Error("armed Trace did not record")
	}
}

func TestRingWrap(t *testing.T) {
	r := newRing(4) // power of two already
	if len(r.buf) != 4 {
		t.Fatalf("cap = %d", len(r.buf))
	}
	for i := 0; i < 10; i++ {
		r.record(Event{GuestPC: i})
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("len = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.GuestPC != 6+i || ev.Seq != uint64(6+i) {
			t.Errorf("event %d = pc %d seq %d, want pc/seq %d", i, ev.GuestPC, ev.Seq, 6+i)
		}
	}
	if r.Len() != 4 || r.Total() != 10 {
		t.Errorf("Len=%d Total=%d, want 4/10", r.Len(), r.Total())
	}
}

func TestRingConcurrent(t *testing.T) {
	reg := New(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				reg.Trace(EvDispatch, i, -1, 0)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			reg.Events()
		}
	}()
	wg.Wait()
	<-done
	if reg.TraceTotal() != 2000 {
		t.Errorf("total = %d, want 2000", reg.TraceTotal())
	}
}

func TestLabel(t *testing.T) {
	if got := Label("x_total"); got != "x_total" {
		t.Errorf("no-label = %q", got)
	}
	want := `learn_phase_ns_total{phase="verify",worker="3"}`
	if got := Label("learn_phase_ns_total", "phase", "verify", "worker", "3"); got != want {
		t.Errorf("labeled = %q, want %q", got, want)
	}
}

func TestPrometheusText(t *testing.T) {
	reg := New(0)
	reg.Counter("b_total").Add(7)
	reg.Counter(Label("a_total", "k", "x")).Add(1)
	reg.Counter(Label("a_total", "k", "y")).Add(2)
	reg.Gauge("v").Set(9)
	reg.Histogram(Label("h_ns", "phase", "p")).Observe(600 * time.Nanosecond)
	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE a_total counter\n",
		"a_total{k=\"x\"} 1\n",
		"a_total{k=\"y\"} 2\n",
		"b_total 7\n",
		"# TYPE v gauge\nv 9\n",
		"# TYPE h_ns histogram\n",
		"h_ns_bucket{phase=\"p\",le=\"511\"} 0\n",
		"h_ns_bucket{phase=\"p\",le=\"1023\"} 1\n",
		"h_ns_bucket{phase=\"p\",le=\"+Inf\"} 1\n",
		"h_ns_sum{phase=\"p\"} 600\n",
		"h_ns_count{phase=\"p\"} 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// The TYPE line must precede the first sample of its family and not
	// repeat per label set.
	if strings.Count(out, "# TYPE a_total counter") != 1 {
		t.Error("TYPE line repeated per label set")
	}
}

func TestHTTPExporter(t *testing.T) {
	reg := New(0)
	reg.Counter("dbt_dispatch_total").Add(5)
	reg.Trace(EvQuarantine, 42, 7, 1)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if out := get("/metrics"); !strings.Contains(out, "dbt_dispatch_total 5") {
		t.Errorf("/metrics missing counter:\n%s", out)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(get("/snapshot.json?events=1")), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["dbt_dispatch_total"] != 5 {
		t.Errorf("snapshot counter = %d", snap.Counters["dbt_dispatch_total"])
	}
	if len(snap.Events) != 1 || snap.Events[0].KindName != "quarantine" ||
		snap.Events[0].GuestPC != 42 || snap.Events[0].RuleID != 7 {
		t.Errorf("snapshot events = %+v", snap.Events)
	}
	var evs []Event
	if err := json.Unmarshal([]byte(get("/trace.json")), &evs); err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 {
		t.Errorf("trace.json events = %+v", evs)
	}
	get("/disarm")
	if reg.Armed() {
		t.Error("/disarm did not take")
	}
	get("/arm")
	if !reg.Armed() {
		t.Error("/arm did not take")
	}
	if out := get("/debug/pprof/cmdline"); len(out) == 0 {
		t.Error("pprof cmdline empty")
	}
}

// TestFilterEvents pins the /trace.json ?ev= filter semantics: empty
// filter keeps everything (and never returns nil, so the JSON encoding
// stays an array), single and multi-kind filters keep only the named
// kinds, whitespace and empty list entries are tolerated, and an
// unknown kind yields an empty, non-nil slice.
func TestFilterEvents(t *testing.T) {
	evs := []Event{
		{KindName: "dispatch", GuestPC: 1},
		{KindName: "fault", GuestPC: 2},
		{KindName: "dispatch", GuestPC: 3},
		{KindName: "quarantine", GuestPC: 4},
	}
	kinds := func(out []Event) string {
		var names []string
		for _, e := range out {
			names = append(names, e.KindName)
		}
		return strings.Join(names, ",")
	}

	if out := FilterEvents(evs, ""); len(out) != 4 {
		t.Errorf("empty filter kept %d events", len(out))
	}
	if out := FilterEvents(nil, ""); out == nil {
		t.Error("nil events with empty filter returned nil")
	}
	if got := kinds(FilterEvents(evs, "dispatch")); got != "dispatch,dispatch" {
		t.Errorf("dispatch filter kept %q", got)
	}
	if got := kinds(FilterEvents(evs, "dispatch,fault")); got != "dispatch,fault,dispatch" {
		t.Errorf("multi filter kept %q", got)
	}
	if got := kinds(FilterEvents(evs, " dispatch , fault ,")); got != "dispatch,fault,dispatch" {
		t.Errorf("whitespace filter kept %q", got)
	}
	if out := FilterEvents(evs, "nonesuch"); out == nil || len(out) != 0 {
		t.Errorf("unknown kind returned %v", out)
	}
	// Order is preserved: the ring is oldest-first and the filter must
	// not reorder it.
	if out := FilterEvents(evs, "dispatch"); out[0].GuestPC != 1 || out[1].GuestPC != 3 {
		t.Errorf("filter reordered events: %+v", out)
	}
}

// TestTraceEndpointFilter drives the filter through the HTTP surface.
func TestTraceEndpointFilter(t *testing.T) {
	reg := New(8)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	reg.Trace(EvDispatch, 11, 0, 5)
	reg.Trace(EvFault, 22, 3, 1)
	reg.Trace(EvDispatch, 33, 0, 9)

	get := func(path string) []Event {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out []Event
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	if all := get("/trace.json"); len(all) != 3 {
		t.Fatalf("unfiltered trace has %d events", len(all))
	}
	disp := get("/trace.json?ev=dispatch")
	if len(disp) != 2 || disp[0].GuestPC != 11 || disp[1].GuestPC != 33 {
		t.Fatalf("?ev=dispatch returned %+v", disp)
	}
	if none := get("/trace.json?ev=bogus"); none == nil || len(none) != 0 {
		t.Fatalf("?ev=bogus returned %+v (must be an empty array, not null)", none)
	}
}
