package telemetry

import (
	"sync"
	"time"
)

// EventKind classifies a traced engine event.
type EventKind uint8

// Event kinds, in rough lifecycle order.
const (
	EvTranslate  EventKind = iota // a block was translated (Arg: covered guest instrs)
	EvDispatch                    // a block was dispatched (sampled; Arg: block ExecCount)
	EvFault                       // a fault was contained (Arg: retry count for the entry)
	EvRecovery                    // a contained fault recovered
	EvQuarantine                  // a rule was quarantined (Arg: rules removed)
	EvRefreeze                    // the engine refroze its rule-index snapshot
	EvInvalidate                  // blocks were invalidated (Arg: block count)
	EvPromote                     // a block was promoted to the threaded tier (Arg: ExecCount at promotion)
	numEventKinds
)

var eventKindNames = [numEventKinds]string{
	"translate", "dispatch", "fault", "recovery",
	"quarantine", "refreeze", "invalidate", "promote",
}

// String names the kind.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "unknown"
}

// Event is one traced occurrence. GuestPC and RuleID carry the engine's
// attribution (-1 when not applicable); Arg is kind-specific.
type Event struct {
	Seq      uint64    `json:"seq"`
	UnixNano int64     `json:"unix_nano"`
	Kind     EventKind `json:"-"`
	KindName string    `json:"kind"`
	GuestPC  int       `json:"guest_pc"`
	RuleID   int       `json:"rule_id"`
	Arg      uint64    `json:"arg,omitempty"`
}

// Ring is a bounded event buffer: the most recent cap events survive,
// older ones are overwritten. A mutex (not a lock-free scheme) guards it:
// the traced events — translation, faults, quarantines, invalidations,
// and sampled dispatches — are orders of magnitude rarer than the
// counter updates on the hot paths, and recording is skipped entirely
// while the registry is disarmed.
type Ring struct {
	mu   sync.Mutex
	buf  []Event
	next uint64 // total events ever recorded; buf slot is next % len(buf)
}

const defaultRingCap = 4096

func newRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = defaultRingCap
	}
	// Round up to a power of two so the slot index is a mask.
	c := 1
	for c < capacity {
		c <<= 1
	}
	return &Ring{buf: make([]Event, c)}
}

func (r *Ring) record(ev Event) {
	r.mu.Lock()
	ev.Seq = r.next
	r.buf[r.next&uint64(len(r.buf)-1)] = ev
	r.next++
	r.mu.Unlock()
}

// Events returns the buffered events oldest-first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	size := uint64(len(r.buf))
	start := uint64(0)
	if n > size {
		start = n - size
	}
	out := make([]Event, 0, n-start)
	for s := start; s < n; s++ {
		out = append(out, r.buf[s&(size-1)])
	}
	return out
}

// Len returns how many events are currently buffered.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next > uint64(len(r.buf)) {
		return len(r.buf)
	}
	return int(r.next)
}

// Total returns how many events have ever been recorded (including
// overwritten ones).
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Trace records an event when the registry is armed. guestPC and ruleID
// use -1 for "not applicable".
func (r *Registry) Trace(kind EventKind, guestPC, ruleID int, arg uint64) {
	if !r.Armed() {
		return
	}
	r.trace.record(Event{
		UnixNano: time.Now().UnixNano(),
		Kind:     kind,
		KindName: kind.String(),
		GuestPC:  guestPC,
		RuleID:   ruleID,
		Arg:      arg,
	})
}

// Events returns the trace ring contents oldest-first.
func (r *Registry) Events() []Event { return r.trace.Events() }

// TraceTotal returns how many events have ever been traced.
func (r *Registry) TraceTotal() uint64 { return r.trace.Total() }
