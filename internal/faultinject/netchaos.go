// Network fault injection: a deterministic http.RoundTripper that
// subjects the rule-distribution plane (or any HTTP client) to the
// failure modes a fleet sees in the wild — dropped connections, stalls
// past the caller's deadline, truncated and bit-flipped payloads, 5xx
// bursts, and mid-response resets. The fault schedule is a pure function
// of the request sequence (and, for the seeded plan, of the seed), so a
// chaos test that fails replays identically.
//
// The transport sits between a dist.Client and a live dist.Server, which
// keeps the server's behaviour honest: corruption happens on the wire,
// after the server has served a perfectly good snapshot — exactly the
// place hash verification is supposed to guard.

package faultinject

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"
)

// NetFault is one injected network failure mode.
type NetFault uint8

const (
	// NetNone passes the request through untouched.
	NetNone NetFault = iota
	// NetDrop fails the request before it reaches the server, like a
	// refused or dropped connection.
	NetDrop
	// NetDelay stalls until the request's context deadline expires (or a
	// safety cap, for requests without one), then fails — the black-hole
	// case a client without per-request deadlines hangs on forever.
	NetDelay
	// Net5xx synthesizes a 503 without contacting the server.
	Net5xx
	// NetTruncate serves only a prefix of the real response body with a
	// clean EOF — the payload looks complete and only content
	// verification (hash, parse) can catch it.
	NetTruncate
	// NetCorrupt flips one bit in the real response body, headers intact,
	// so the advertised hash no longer matches the payload.
	NetCorrupt
	// NetReset errors the response body mid-read, like a connection reset
	// after the headers landed — the mid-long-poll abort case.
	NetReset

	netFaultKinds
)

// String names the fault (test diagnostics).
func (f NetFault) String() string {
	switch f {
	case NetNone:
		return "none"
	case NetDrop:
		return "drop"
	case NetDelay:
		return "delay"
	case Net5xx:
		return "5xx"
	case NetTruncate:
		return "truncate"
	case NetCorrupt:
		return "corrupt"
	case NetReset:
		return "reset"
	}
	return fmt.Sprintf("netfault(%d)", uint8(f))
}

// NetFaults lists every injectable fault kind (the chaos matrix).
func NetFaults() []NetFault {
	return []NetFault{NetDrop, NetDelay, Net5xx, NetTruncate, NetCorrupt, NetReset}
}

// ErrInjectedDrop and ErrInjectedReset are the transport-level errors the
// injected faults surface, wrapped by net/http into *url.Error like any
// real transport failure.
var (
	ErrInjectedDrop  = errors.New("faultinject: injected connection drop")
	ErrInjectedReset = errors.New("faultinject: injected connection reset")
)

// netDelayCap bounds NetDelay for requests that carry no deadline, so an
// undisciplined client fails in bounded time instead of wedging the test.
const netDelayCap = 5 * time.Second

// ChaosPlan decides the fault for the n-th request (1-based). Plans are
// invoked under the transport's lock, so a plan may keep unguarded state
// (sequence counters, a seeded *rand.Rand).
type ChaosPlan func(req *http.Request, n int) NetFault

// ChaosSeq cycles through the given faults in order, one per request —
// the fully deterministic matrix plan.
func ChaosSeq(faults ...NetFault) ChaosPlan {
	return func(_ *http.Request, n int) NetFault {
		if len(faults) == 0 {
			return NetNone
		}
		return faults[(n-1)%len(faults)]
	}
}

// ChaosRand draws a fault for each request from a seeded PRNG: with
// probability rate one of kinds (uniformly), else none. The schedule is a
// pure function of the seed and the request sequence.
func ChaosRand(seed int64, rate float64, kinds ...NetFault) ChaosPlan {
	rng := rand.New(rand.NewSource(seed))
	if len(kinds) == 0 {
		kinds = NetFaults()
	}
	return func(*http.Request, int) NetFault {
		if rng.Float64() >= rate {
			return NetNone
		}
		return kinds[rng.Intn(len(kinds))]
	}
}

// ChaosPath confines a plan to requests whose URL path starts with
// prefix; other requests pass clean. The wrapped plan sees its own
// request numbering, so its schedule does not shift when unrelated
// traffic interleaves.
func ChaosPath(prefix string, plan ChaosPlan) ChaosPlan {
	n := 0
	return func(req *http.Request, _ int) NetFault {
		if !strings.HasPrefix(req.URL.Path, prefix) {
			return NetNone
		}
		n++
		return plan(req, n)
	}
}

// ChaosTransport is the fault-injecting http.RoundTripper. Configure
// Inner (nil means http.DefaultTransport) and Plan (nil injects nothing),
// then install it on the client under test. Safe for concurrent use.
type ChaosTransport struct {
	Inner http.RoundTripper
	Plan  ChaosPlan

	mu    sync.Mutex
	n     int
	fired [netFaultKinds]int
	paths map[string]int
}

// TotalRequests returns how many requests the transport has seen.
func (t *ChaosTransport) TotalRequests() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Requests returns how many requests targeted the given URL path
// (query excluded) — the probe behind "a poisoned snapshot version is
// fetched at most once".
func (t *ChaosTransport) Requests(path string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.paths[path]
}

// Fired returns how many times the given fault kind has been injected.
func (t *ChaosTransport) Fired(f NetFault) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(f) >= len(t.fired) {
		return 0
	}
	return t.fired[f]
}

// RoundTrip implements http.RoundTripper.
func (t *ChaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	t.n++
	if t.paths == nil {
		t.paths = map[string]int{}
	}
	t.paths[req.URL.Path]++
	fault := NetNone
	if t.Plan != nil {
		fault = t.Plan(req, t.n)
	}
	if int(fault) < len(t.fired) {
		t.fired[fault]++
	}
	t.mu.Unlock()

	inner := t.Inner
	if inner == nil {
		inner = http.DefaultTransport
	}
	switch fault {
	case NetDrop:
		return nil, ErrInjectedDrop
	case NetDelay:
		timer := time.NewTimer(netDelayCap)
		defer timer.Stop()
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-timer.C:
			return nil, fmt.Errorf("faultinject: injected stall expired (request had no deadline)")
		}
	case Net5xx:
		return &http.Response{
			Status:     "503 Service Unavailable",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:     http.Header{"Content-Type": []string{"text/plain"}},
			Body:       io.NopCloser(strings.NewReader("faultinject: injected 503\n")),
			Request:    req,
		}, nil
	}

	resp, err := inner.RoundTrip(req)
	if err != nil || fault == NetNone {
		return resp, err
	}
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil {
		return nil, rerr
	}
	switch fault {
	case NetTruncate:
		body = body[:len(body)/2]
		resp.ContentLength = int64(len(body))
		resp.Header.Del("Content-Length")
		resp.Body = io.NopCloser(bytes.NewReader(body))
	case NetCorrupt:
		if len(body) > 0 {
			body = append([]byte(nil), body...)
			body[len(body)/2] ^= 0x40
		}
		resp.Body = io.NopCloser(bytes.NewReader(body))
	case NetReset:
		resp.Body = io.NopCloser(&resetReader{data: body[:len(body)/2]})
	}
	return resp, nil
}

// resetReader serves its data then fails with ErrInjectedReset, modeling
// a connection reset mid-body (never a clean EOF).
type resetReader struct {
	data []byte
	off  int
}

func (r *resetReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, ErrInjectedReset
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}
