// Package faultinject provides named, deterministic fault-injection points
// for the DBT engine and the rule learner. Production code calls Fire (or
// FireKey) at an instrumented site; tests and `ci.sh faults` arm points to
// make a specific site fault on a specific hit. The disarmed fast path is a
// single atomic load, so leaving the instrumentation compiled in costs
// nothing measurable on the translation or dispatch hot paths.
//
// Two trigger kinds exist, both deterministic:
//
//   - counted (Arm): the point fires exactly once, on its Nth Fire call.
//     Hit counting is per-point and process-global, so counted points suit
//     single-threaded consumers (the engine's translate/exec loop), where
//     hit order is a pure function of the workload.
//
//   - keyed (ArmKey): the point fires on every FireKey call whose key
//     equals the armed key. Keyed points suit concurrent consumers (the
//     parallel learner), where hit ORDER is scheduling-dependent but hit
//     KEYS are not — the same candidate faults no matter which worker
//     processes it or how many workers exist.
package faultinject

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registered injection-point names.
const (
	// TranslateFail makes Engine.translate return an error (the paper's
	// "rule does not apply / translation failed" case) without a panic.
	TranslateFail = "translate-fail"
	// RuleBindingCorrupt panics inside rule application, after a rule has
	// been matched and bound — the "bad learned rule" containment case.
	RuleBindingCorrupt = "rule-binding-corrupt"
	// CodegenPanic panics in the TCG per-instruction translation path.
	CodegenPanic = "codegen-panic"
	// InterpPanic panics at the top of TB execution, before any guest
	// state has been mutated.
	InterpPanic = "interp-panic"
	// SolverMaybe forces one equivalence query to report Maybe (the
	// paper's timeout column) regardless of the real verdict.
	SolverMaybe = "solver-maybe"
	// LearnPanic panics a learning candidate (keyed by candidate, so the
	// parallel pool crashes the same candidate at every -jobs value).
	LearnPanic = "learn-panic"
)

// Points lists every registered injection-point name.
func Points() []string {
	return []string{TranslateFail, RuleBindingCorrupt, CodegenPanic,
		InterpPanic, SolverMaybe, LearnPanic}
}

// EnginePoints lists the points instrumented inside Engine.Run — the
// single-fault matrix the differential recovery gate iterates over.
func EnginePoints() []string {
	return []string{TranslateFail, RuleBindingCorrupt, CodegenPanic, InterpPanic}
}

type point struct {
	hits  uint64 // Fire/FireKey calls observed while armed
	at    uint64 // counted trigger: fire on the at-th hit (1-based), once
	every bool   // repeating trigger: fire on every hit
	key   string // keyed trigger: fire on every matching key
	fired uint64 // times the point actually fired
}

var (
	armed atomic.Bool // fast path: any point armed at all
	mu    sync.Mutex
	reg   = map[string]*point{}
)

func valid(name string) bool {
	for _, p := range Points() {
		if p == name {
			return true
		}
	}
	return false
}

// Enabled reports whether any injection point is armed. The disarmed cost
// of every Fire call is exactly this atomic load.
func Enabled() bool { return armed.Load() }

// Arm makes the named point fire exactly once, on its nth Fire call
// (1-based; n <= 1 means the next call). Re-arming resets the hit count.
func Arm(name string, n uint64) {
	if !valid(name) {
		panic(fmt.Sprintf("faultinject: unknown point %q", name))
	}
	if n < 1 {
		n = 1
	}
	mu.Lock()
	reg[name] = &point{at: n}
	mu.Unlock()
	armed.Store(true)
}

// ArmEvery makes the named point fire on every Fire call — the persistent-
// fault trigger (a one-shot can always be absorbed by a retry path).
func ArmEvery(name string) {
	if !valid(name) {
		panic(fmt.Sprintf("faultinject: unknown point %q", name))
	}
	mu.Lock()
	reg[name] = &point{every: true}
	mu.Unlock()
	armed.Store(true)
}

// ArmKey makes the named point fire on every FireKey call whose key equals
// key.
func ArmKey(name, key string) {
	if !valid(name) {
		panic(fmt.Sprintf("faultinject: unknown point %q", name))
	}
	mu.Lock()
	reg[name] = &point{key: key}
	mu.Unlock()
	armed.Store(true)
}

// Disarm removes the named point's trigger.
func Disarm(name string) {
	mu.Lock()
	delete(reg, name)
	empty := len(reg) == 0
	mu.Unlock()
	if empty {
		armed.Store(false)
	}
}

// Reset disarms every point and clears all counters.
func Reset() {
	mu.Lock()
	reg = map[string]*point{}
	mu.Unlock()
	armed.Store(false)
}

// Fire reports whether the named counted point should fault at this call
// site, and advances its hit counter. Counted points fire exactly once.
func Fire(name string) bool {
	if !armed.Load() {
		return false
	}
	mu.Lock()
	defer mu.Unlock()
	p := reg[name]
	if p == nil || (p.at == 0 && !p.every) {
		return false
	}
	p.hits++
	if p.every {
		p.fired++
		return true
	}
	if p.hits != p.at {
		return false
	}
	p.fired++
	p.at = 0 // one-shot
	return true
}

// FireKey reports whether the named keyed point should fault for this key.
// Keyed points fire on every matching call, so firing is independent of
// scheduling order.
func FireKey(name, key string) bool {
	if !armed.Load() {
		return false
	}
	mu.Lock()
	defer mu.Unlock()
	p := reg[name]
	if p == nil || p.key == "" || p.key != key {
		if p != nil && p.key != "" {
			p.hits++
		}
		return false
	}
	p.hits++
	p.fired++
	return true
}

// Fired returns how many times the named point has actually faulted since
// it was last armed.
func Fired(name string) uint64 {
	mu.Lock()
	defer mu.Unlock()
	if p := reg[name]; p != nil {
		return p.fired
	}
	return 0
}

// Hits returns how many Fire/FireKey calls the named point has observed
// since it was last armed — a coverage probe for the instrumented sites.
func Hits(name string) uint64 {
	mu.Lock()
	defer mu.Unlock()
	if p := reg[name]; p != nil {
		return p.hits
	}
	return 0
}

// Parse arms points from a comma-separated spec, the `-faults` flag
// syntax: `name` (fire on the first hit), `name@N` (fire on the Nth hit),
// `name@every` (fire on every hit), or `name=key` (keyed trigger). An
// empty spec is a no-op.
func Parse(spec string) error {
	for _, fld := range strings.Split(spec, ",") {
		fld = strings.TrimSpace(fld)
		if fld == "" {
			continue
		}
		if name, key, ok := strings.Cut(fld, "="); ok {
			if !valid(name) {
				return fmt.Errorf("faultinject: unknown point %q", name)
			}
			ArmKey(name, key)
			continue
		}
		name, nth, hasNth := strings.Cut(fld, "@")
		if !valid(name) {
			return fmt.Errorf("faultinject: unknown point %q", name)
		}
		if nth == "every" {
			ArmEvery(name)
			continue
		}
		n := uint64(1)
		if hasNth {
			v, err := strconv.ParseUint(nth, 10, 64)
			if err != nil || v < 1 {
				return fmt.Errorf("faultinject: bad hit count in %q", fld)
			}
			n = v
		}
		Arm(name, n)
	}
	return nil
}

// Status summarizes the armed points as "name hits/fired" lines, in name
// order (diagnostics for `dbtrun -faults`).
func Status() string {
	mu.Lock()
	defer mu.Unlock()
	names := make([]string, 0, len(reg))
	for n := range reg {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		p := reg[n]
		fmt.Fprintf(&b, "%s hits=%d fired=%d\n", n, p.hits, p.fired)
	}
	return b.String()
}
