package faultinject

import (
	"sync"
	"testing"
)

func TestCountedFiresOnceAtNthHit(t *testing.T) {
	defer Reset()
	Arm(TranslateFail, 3)
	if !Enabled() {
		t.Fatal("arming did not enable the registry")
	}
	for i := 1; i <= 6; i++ {
		got := Fire(TranslateFail)
		if want := i == 3; got != want {
			t.Fatalf("hit %d: fired=%v, want %v", i, got, want)
		}
	}
	if Fired(TranslateFail) != 1 {
		t.Fatalf("fired count %d, want 1", Fired(TranslateFail))
	}
	if Hits(TranslateFail) != 3 {
		// hits stop advancing once the one-shot trigger is spent
		t.Fatalf("hit count %d, want 3", Hits(TranslateFail))
	}
}

func TestKeyedFiresOnEveryMatch(t *testing.T) {
	defer Reset()
	ArmKey(LearnPanic, "mcf:12")
	if Fire(LearnPanic) {
		t.Fatal("counted Fire must not trigger a keyed point")
	}
	for i := 0; i < 2; i++ {
		if FireKey(LearnPanic, "mcf:11") {
			t.Fatal("fired on a non-matching key")
		}
		if !FireKey(LearnPanic, "mcf:12") {
			t.Fatal("did not fire on the armed key")
		}
	}
	if Fired(LearnPanic) != 2 {
		t.Fatalf("fired count %d, want 2", Fired(LearnPanic))
	}
}

func TestDisarmedIsFree(t *testing.T) {
	Reset()
	if Enabled() {
		t.Fatal("enabled with empty registry")
	}
	if Fire(InterpPanic) || FireKey(LearnPanic, "x") {
		t.Fatal("disarmed point fired")
	}
}

func TestDisarmDropsEnabledWhenLastPointGoes(t *testing.T) {
	defer Reset()
	Arm(InterpPanic, 1)
	Arm(CodegenPanic, 1)
	Disarm(InterpPanic)
	if !Enabled() {
		t.Fatal("disabled while a point is still armed")
	}
	Disarm(CodegenPanic)
	if Enabled() {
		t.Fatal("still enabled after every point was disarmed")
	}
}

func TestParse(t *testing.T) {
	defer Reset()
	if err := Parse("translate-fail@2, interp-panic, learn-panic=gcc:7"); err != nil {
		t.Fatal(err)
	}
	if Fire(TranslateFail) {
		t.Fatal("translate-fail fired on hit 1, armed for hit 2")
	}
	if !Fire(TranslateFail) {
		t.Fatal("translate-fail did not fire on hit 2")
	}
	if !Fire(InterpPanic) {
		t.Fatal("bare point name did not arm for the first hit")
	}
	if !FireKey(LearnPanic, "gcc:7") {
		t.Fatal("keyed spec did not arm")
	}
	for _, bad := range []string{"no-such-point", "interp-panic@zero", "interp-panic@0"} {
		if err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) accepted", bad)
		}
	}
	if err := Parse(""); err != nil {
		t.Fatalf("empty spec: %v", err)
	}
}

// TestConcurrentFireKey gates the registry's locking under -race: many
// goroutines probing keyed and counted points concurrently must observe
// exactly one counted firing and exactly the matching keyed firings.
func TestConcurrentFireKey(t *testing.T) {
	defer Reset()
	Arm(InterpPanic, 50)
	ArmKey(LearnPanic, "k")
	const workers, probes = 8, 100
	var wg sync.WaitGroup
	var counted, keyed sync.Map
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, k := 0, 0
			for i := 0; i < probes; i++ {
				if Fire(InterpPanic) {
					c++
				}
				if FireKey(LearnPanic, []string{"k", "j"}[i%2]) {
					k++
				}
			}
			counted.Store(w, c)
			keyed.Store(w, k)
		}(w)
	}
	wg.Wait()
	sum := func(m *sync.Map) int {
		total := 0
		m.Range(func(_, v any) bool { total += v.(int); return true })
		return total
	}
	if got := sum(&counted); got != 1 {
		t.Fatalf("counted point fired %d times, want 1", got)
	}
	if got := sum(&keyed); got != workers*probes/2 {
		t.Fatalf("keyed point fired %d times, want %d", got, workers*probes/2)
	}
}

func TestArmEveryFiresOnEveryHit(t *testing.T) {
	defer Reset()
	ArmEvery(SolverMaybe)
	for i := 0; i < 5; i++ {
		if !Fire(SolverMaybe) {
			t.Fatalf("hit %d did not fire", i+1)
		}
	}
	if Fired(SolverMaybe) != 5 || Hits(SolverMaybe) != 5 {
		t.Errorf("fired=%d hits=%d, want 5/5", Fired(SolverMaybe), Hits(SolverMaybe))
	}
}

func TestParseEvery(t *testing.T) {
	defer Reset()
	if err := Parse("solver-maybe@every"); err != nil {
		t.Fatal(err)
	}
	if !Fire(SolverMaybe) || !Fire(SolverMaybe) {
		t.Error("@every spec did not arm a repeating trigger")
	}
}
