package faultinject

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// chaosClient returns a test server serving a fixed body plus a client
// routed through a ChaosTransport with the given plan.
func chaosClient(t *testing.T, body string, plan ChaosPlan) (*ChaosTransport, *http.Client, string) {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, body)
	}))
	t.Cleanup(srv.Close)
	ct := &ChaosTransport{Plan: plan}
	return ct, &http.Client{Transport: ct}, srv.URL
}

// TestChaosTransportMatrix drives every fault kind once and checks each
// produces the client-visible failure it models; a trailing clean request
// proves the transport recovers.
func TestChaosTransportMatrix(t *testing.T) {
	const body = "hello chaos transport, a perfectly healthy payload"
	seq := []NetFault{NetDrop, NetDelay, Net5xx, NetTruncate, NetCorrupt, NetReset, NetNone}
	ct, hc, url := chaosClient(t, body, ChaosSeq(seq...))

	get := func() (string, int, error) {
		ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
		defer cancel()
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		resp, err := hc.Do(req)
		if err != nil {
			return "", 0, err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return string(b), resp.StatusCode, err
	}

	if _, _, err := get(); err == nil || !errors.Is(err, ErrInjectedDrop) {
		t.Errorf("drop: err = %v, want ErrInjectedDrop", err)
	}
	start := time.Now()
	if _, _, err := get(); err == nil {
		t.Error("delay: request succeeded, want deadline expiry")
	} else if time.Since(start) < 150*time.Millisecond {
		t.Errorf("delay: failed after %v, want the full 200ms deadline", time.Since(start))
	}
	if _, code, err := get(); err != nil || code != http.StatusServiceUnavailable {
		t.Errorf("5xx: code %d err %v, want synthesized 503", code, err)
	}
	if got, _, err := get(); err != nil || got != body[:len(body)/2] {
		t.Errorf("truncate: body %q err %v, want clean half-body", got, err)
	}
	if got, _, err := get(); err != nil || got == body || len(got) != len(body) {
		t.Errorf("corrupt: body %q err %v, want same-length bit-flipped body", got, err)
	}
	if _, _, err := get(); err == nil || !errors.Is(err, ErrInjectedReset) {
		t.Errorf("reset: err = %v, want ErrInjectedReset", err)
	}
	if got, _, err := get(); err != nil || got != body {
		t.Errorf("clean request after the matrix: body %q err %v", got, err)
	}

	for _, f := range NetFaults() {
		if ct.Fired(f) != 1 {
			t.Errorf("Fired(%s) = %d, want 1", f, ct.Fired(f))
		}
	}
	if ct.TotalRequests() != 7 {
		t.Errorf("TotalRequests = %d, want 7", ct.TotalRequests())
	}
}

// TestChaosRandDeterministic pins the seeded plan: the same seed yields
// the same fault schedule, a different seed a different one.
func TestChaosRandDeterministic(t *testing.T) {
	draw := func(seed int64) []NetFault {
		plan := ChaosRand(seed, 0.5)
		out := make([]NetFault, 64)
		for i := range out {
			out[i] = plan(nil, i+1)
		}
		return out
	}
	a, b := draw(7), draw(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 7 draw %d: %s vs %s", i, a[i], b[i])
		}
	}
	c := draw(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 7 and 8 produced identical schedules")
	}
}

// TestChaosPathConfinement: a path-scoped plan faults only matching
// requests, with its own stable numbering.
func TestChaosPathConfinement(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()
	ct := &ChaosTransport{Plan: ChaosPath("/bad", ChaosSeq(NetDrop))}
	hc := &http.Client{Transport: ct}

	for i := 0; i < 3; i++ {
		resp, err := hc.Get(srv.URL + "/good")
		if err != nil {
			t.Fatalf("clean path request %d failed: %v", i, err)
		}
		resp.Body.Close()
	}
	if _, err := hc.Get(srv.URL + "/bad"); err == nil || !strings.Contains(err.Error(), "injected") {
		t.Errorf("scoped path: err = %v, want injected drop", err)
	}
	if got := ct.Requests("/bad"); got != 1 {
		t.Errorf("Requests(/bad) = %d, want 1", got)
	}
	if got := ct.Requests("/good"); got != 3 {
		t.Errorf("Requests(/good) = %d, want 3", got)
	}
}
