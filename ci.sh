#!/bin/sh
# ci.sh — the single CI entrypoint. The GitHub workflow and local
# pre-commit run the exact same stages through this script, so "green in
# CI" and "green on my machine" cannot drift apart.
#
# Usage:
#   ./ci.sh check   # go vet + go build + go test over every package
#   ./ci.sh race    # race detector over the concurrent packages
#   ./ci.sh fuzz    # fuzz-smoke: each native fuzz target for $FUZZTIME (30s)
#   ./ci.sh faults  # fault-injection matrix + quarantine/refreeze race gate
#   ./ci.sh bench   # bench guard: fig8 quick sweep + parallel-learn speedup gate
#   ./ci.sh tiers   # tiered execution: cross-tier golden differential + threaded speedup gate
#   ./ci.sh telemetry # disarmed-overhead gate + live /metrics endpoint smoke
#   ./ci.sh dist    # rule-distribution: contention gate + ruleserve/dbtrun smoke
#   ./ci.sh chaos   # network fault matrix + chaos differential gate + cache-fallback smoke
#   ./ci.sh mine    # continuous mining: unit + dedup fuzz + differential gate + flywheel smoke
#   ./ci.sh all     # everything above (fuzz shortened to 5s), for pre-commit
set -eu

stage="${1:-all}"
fuzztime="${FUZZTIME:-30s}"
bench_out="${BENCH_OUT:-BENCH_9.json}"

run_check() {
	go vet ./...
	go build ./...
	go test ./...
}

run_race() {
	# Gates the concurrent code: the learn worker pool, the thread-safe
	# (sharded) rule store and its distribution service, the DBT engine
	# that consumes the store, and the internal telemetry/fault plumbing.
	go test -race ./learn/... ./rules/... ./dbt/... ./internal/...
}

run_fuzz() {
	# Each native fuzz target gets a bounded smoke run; failures reproduce
	# with the seed corpus plus whatever the run discovers.
	go test ./codegen -run '^$' -fuzz '^FuzzDifferentialCompile$' -fuzztime "$fuzztime"
	go test ./dbt -run '^$' -fuzz '^FuzzBackendsAgree$' -fuzztime "$fuzztime"
	go test ./dbt -run '^$' -fuzz '^FuzzEngineRecovers$' -fuzztime "$fuzztime"
	go test ./dbt -run '^$' -fuzz '^FuzzThreadedMatchesStep$' -fuzztime "$fuzztime"
	go test ./dbt -run '^$' -fuzz '^FuzzNativeMatchesStep$' -fuzztime "$fuzztime"
	go test ./rules -run '^$' -fuzz '^FuzzIndexMatchesStore$' -fuzztime "$fuzztime"
	go test ./rules -run '^$' -fuzz '^FuzzShardedStoreMatchesSingle$' -fuzztime "$fuzztime"
	go test ./mine -run '^$' -fuzz '^FuzzMineCandidateKey$' -fuzztime "$fuzztime"
	go test ./x86 -run '^$' -fuzz '^FuzzEncodeDecodeRoundTrip$' -fuzztime "$fuzztime"
	go test ./x86 -run '^$' -fuzz '^FuzzEncodedLenDiff$' -fuzztime "$fuzztime"
}

run_faults() {
	# Differential recovery gate: every registered engine injection point is
	# fired once and the run must finish with the interpreter's exact result
	# and guest-instruction count, the faulting rule quarantined, and the
	# next Freeze() excluding it.
	go test ./dbt -count=1 -v \
		-run '^(TestFaultInjectionMatrix|TestExecFaultQuarantinesRuleCoveredTB|TestPersistentFaultSurfaces|TestEngineInvalidate|TestStaleGenerationBackstop|TestInvalidateRangeClamps)$'
	# Learner containment: an injected per-candidate panic lands in the
	# crash column and merges stay byte-identical at every -jobs value.
	go test ./learn -count=1 -run '^(TestCandidatePanicContained|TestSolverMaybeInjection)$'
	# Quarantine/refreeze under the race detector: writers quarantining
	# against readers freezing snapshots, as a faulting engine does against
	# concurrent translation threads.
	go test -race ./rules -count=1 -run '^TestStoreConcurrent'
	go test -race ./dbt -count=1 -run '^(TestFaultInjectionMatrix|TestExecFaultQuarantinesRuleCoveredTB|TestOfferRulesQuarantineRace)$'
}

run_bench() {
	# The fig8 quick sweep must complete without panic inside the timeout,
	# parallel learning must hit its speedup gate (auto-skipped below 4
	# CPUs), the frozen rule index must beat the locked store by its gate,
	# and the simulated-cycle model must match the pinned golden stats.
	go test ./bench -count=1 -timeout 15m -v \
		-run '^(TestFig8Quick|TestParallelLearnSpeedup|TestLongestMatchSpeedup|TestStatsGolden)$'
	# Machine-readable perf trajectory: the fast-path microbenchmarks, the
	# learn benchmarks, and the sharded-store contention/refreeze
	# benchmarks, as benchstat-convertible JSON in $bench_out.
	bench_txt="$(go test ./bench -run '^$' -count=1 -timeout 15m \
		-bench '^(BenchmarkLongestMatch|BenchmarkDispatch|BenchmarkDispatchTelemetry|BenchmarkLearnSerial|BenchmarkLearnParallel|BenchmarkStoreAddParallel|BenchmarkStoreAddAll|BenchmarkFreezeSharded)$')"
	printf '%s\n' "$bench_txt"
	printf '%s\n' "$bench_txt" | go run ./cmd/benchjson > "$bench_out"
	echo "ci.sh: wrote $bench_out"
}

run_tiers() {
	# Tiered-execution gates. Correctness: the thunk compiler and the
	# native emitter must be step-for-step identical to the switch
	# interpreter (x86 unit + dbt differentials — the native tests
	# auto-skip on non-amd64 hosts, where the tier degrades to threaded),
	# and every corpus program must produce a byte-identical StatsSnapshot
	# whichever tier runs it — the faster tiers are wall-clock only.
	go test ./x86 -count=1 -run '^(TestThunks|TestBuildThunks|TestRunThunks)'
	go test ./x86/native -count=1 -run '^TestNative'
	go test ./dbt -count=1 -v \
		-run '^(TestTiersAgreeFixed|TestTierLifecycle|TestThreeTierLifecycle|TestParseTier)$'
	go test ./bench -count=1 -timeout 10m -v -run '^TestTierGoldenDifferential$'
	# Perf: a warm run under the threaded tier must beat the switch
	# interpreter by >= 15% wall-clock, and the native tier must beat
	# threaded by >= 30% where the back end exists (auto-skips below 4
	# CPUs; the native half also skips on non-amd64 hosts).
	go test ./bench -count=1 -timeout 10m -v -run '^TestDispatchTierSpeedup$'
}

# fetch URL to stdout, with whichever http client the machine has.
fetch_url() {
	if command -v curl >/dev/null 2>&1; then
		curl -fsS "$1"
	else
		wget -qO- "$1"
	fi
}

# wait_for_line FILE PATTERN [TRIES]: poll (0.1s apart) until a line of
# FILE matches the grep PATTERN; fails after TRIES polls (default 600).
wait_for_line() {
	tries="${3:-600}"
	i=0
	while [ "$i" -lt "$tries" ]; do
		if grep -q "$2" "$1" 2>/dev/null; then
			return 0
		fi
		i=$((i + 1))
		sleep 0.1
	done
	return 1
}

# wait_tel_addr STDERR_FILE: poll for the "telemetry: listening on ADDR"
# announcement and print the bound address.
wait_tel_addr() {
	wait_for_line "$1" '^telemetry: listening on ' 100 || return 1
	sed -n 's/^telemetry: listening on //p' "$1"
}

# json_field FILE FIELD: extract a numeric field from a one-line JSON
# record (the dbt.RunStats encoding dbtrun -json emits).
json_field() {
	sed -n "s/.*\"$2\":\\(-\\{0,1\\}[0-9][0-9]*\\).*/\\1/p" "$1"
}

run_telemetry() {
	# The subsystem's two contracts, as tests: armed telemetry observes the
	# engine without perturbing the deterministic cycle model, and an
	# attached-but-disarmed registry costs within 5% of no registry at all
	# on the dispatch hot loop.
	go test ./internal/telemetry -count=1
	go test ./dbt -count=1 -run '^TestTelemetry'
	go test ./bench -count=1 -v -timeout 10m -run '^TestTelemetryDisarmedOverhead$'

	# Endpoint smoke against live processes: rulelearn must serve nonzero
	# per-phase learner timings, then dbtrun (rules backend, on the rules
	# that learning just wrote) must serve nonzero dbt_dispatch_total and
	# rules_freeze_total. Both bind an ephemeral port and linger after the
	# work so the scrape cannot race process exit.
	tmpdir="$(mktemp -d)"
	go build -o "$tmpdir/rulelearn" ./cmd/rulelearn
	go build -o "$tmpdir/dbtrun" ./cmd/dbtrun

	"$tmpdir/rulelearn" -out "$tmpdir/rules.txt" -metrics-addr 127.0.0.1:0 \
		-metrics-linger 60s >"$tmpdir/rl.out" 2>"$tmpdir/rl.err" &
	rl_pid=$!
	addr="$(wait_tel_addr "$tmpdir/rl.err")" || {
		echo "ci.sh: rulelearn never announced its telemetry address" >&2
		exit 1
	}
	wait_for_line "$tmpdir/rl.out" '^wrote' || {
		echo "ci.sh: rulelearn never reported writing its rules" >&2
		exit 1
	}
	fetch_url "http://$addr/metrics" >"$tmpdir/rl.metrics"
	kill "$rl_pid" 2>/dev/null || true
	wait "$rl_pid" 2>/dev/null || true
	grep -Eq '^learn_phase_ns_total\{phase="verify",worker="0"\} [0-9]*[1-9][0-9]*$' "$tmpdir/rl.metrics" || {
		echo "ci.sh: rulelearn /metrics lacks nonzero verify-phase timing" >&2
		exit 1
	}
	grep -Eq '^rules_add_total [0-9]*[1-9][0-9]*$' "$tmpdir/rl.metrics" || {
		echo "ci.sh: rulelearn /metrics lacks nonzero rules_add_total" >&2
		exit 1
	}

	"$tmpdir/dbtrun" -bench mcf -backend rules -rules "$tmpdir/rules.txt" \
		-metrics-addr 127.0.0.1:0 -metrics-linger 60s \
		>"$tmpdir/dr.out" 2>"$tmpdir/dr.err" &
	dr_pid=$!
	addr="$(wait_tel_addr "$tmpdir/dr.err")" || {
		echo "ci.sh: dbtrun never announced its telemetry address" >&2
		exit 1
	}
	wait_for_line "$tmpdir/dr.out" '^rule hits' || {
		echo "ci.sh: dbtrun never reported its rule hits" >&2
		exit 1
	}
	fetch_url "http://$addr/metrics" >"$tmpdir/dr.metrics"
	kill "$dr_pid" 2>/dev/null || true
	wait "$dr_pid" 2>/dev/null || true
	grep -Eq '^dbt_dispatch_total [0-9]*[1-9][0-9]*$' "$tmpdir/dr.metrics" || {
		echo "ci.sh: dbtrun /metrics lacks nonzero dbt_dispatch_total" >&2
		exit 1
	}
	grep -Eq '^rules_freeze_total [0-9]*[1-9][0-9]*$' "$tmpdir/dr.metrics" || {
		echo "ci.sh: dbtrun /metrics lacks nonzero rules_freeze_total" >&2
		exit 1
	}
	rm -rf "$tmpdir"
	echo "ci.sh: telemetry endpoint smoke OK"
}

run_dist() {
	# The distribution service's own unit tests (wire contract, snapshot
	# cache, long-poll, incremental quarantine subscription).
	go test ./rules/dist -count=1
	# Contention gate: at >= 4 writers on disjoint shards, the sharded
	# store must improve the lock-wait-inclusive rules_add_ns p99 by >= 2x
	# over a single-lock store (auto-skips below 4 CPUs, where writers
	# timeshare and scheduler noise drowns the lock-wait signal).
	go test ./bench -count=1 -v -run '^TestStoreContentionGate$'

	# End-to-end smoke: the same rule file served over the wire must
	# reproduce the local -rules run exactly — same result, same guest
	# instruction count.
	tmpdir="$(mktemp -d)"
	go build -o "$tmpdir/rulelearn" ./cmd/rulelearn
	go build -o "$tmpdir/dbtrun" ./cmd/dbtrun
	go build -o "$tmpdir/ruleserve" ./cmd/ruleserve

	"$tmpdir/rulelearn" -out "$tmpdir/rules.txt" >"$tmpdir/rl.out" 2>&1
	"$tmpdir/dbtrun" -bench mcf -backend rules -rules "$tmpdir/rules.txt" \
		-json >"$tmpdir/local.json"

	"$tmpdir/ruleserve" -rules "$tmpdir/rules.txt" -addr 127.0.0.1:0 \
		>"$tmpdir/rs.out" 2>"$tmpdir/rs.err" &
	rs_pid=$!
	wait_for_line "$tmpdir/rs.err" '^ruleserve: listening on ' 100 || {
		echo "ci.sh: ruleserve never announced its address" >&2
		exit 1
	}
	addr="$(sed -n 's/^ruleserve: listening on //p' "$tmpdir/rs.err")"
	"$tmpdir/dbtrun" -bench mcf -backend rules -rules-url "$addr" \
		-json >"$tmpdir/remote.json" 2>"$tmpdir/dr.err"
	kill "$rs_pid" 2>/dev/null || true
	wait "$rs_pid" 2>/dev/null || true

	for field in ret guest_instrs; do
		want="$(json_field "$tmpdir/local.json" "$field")"
		got="$(json_field "$tmpdir/remote.json" "$field")"
		if [ -z "$want" ] || [ "$want" != "$got" ]; then
			echo "ci.sh: dist smoke: $field diverges (local-rules '$want', via-server '$got')" >&2
			exit 1
		fi
	done
	rm -rf "$tmpdir"
	echo "ci.sh: rule-distribution smoke OK (ret and guest_instrs match the local run)"
}

run_chaos() {
	# The fault-injecting transport itself: every fault kind behaves as
	# specified and the schedule is deterministic.
	go test ./internal/faultinject -count=1 -run '^TestChaos'
	# The resilience layer under the fault matrix: per-request deadlines,
	# jittered backoff, the circuit breaker, per-version snapshot
	# quarantine, the last-known-good cache, and graceful server drain.
	# These tests also smoke the resilience telemetry counters
	# (dist_retry_total, dist_snapshot_reject_total,
	# dist_breaker_open_total) against a live registry.
	go test ./rules/dist -count=1 -v \
		-run '^(TestClientRequestDeadline|TestBackoffBounds|TestBreakerOpensAndRecovers|TestCacheRoundTrip|TestSubscribeRetryCounter|TestSubscribeQuarantinesCorruptSnapshot|TestSubscribeVerifyRejection|TestSubscribeColdStartFromCache|TestHealthzAndDrain)$'
	# The end-to-end differential gate: a subscribed engine through the
	# full network fault matrix stays correct during the chaos, never
	# adopts corrupted bytes, and converges to a rule set byte-identical
	# (full StatsSnapshot) to a local-rules run.
	go test ./bench -count=1 -timeout 10m -v -run '^TestChaosDifferentialGate$'

	# Cache-fallback smoke on the real binaries: a dbtrun pointed at a
	# live server populates its last-known-good cache; with the server
	# gone, the same command line must exit 0, warn, and reproduce the
	# served run exactly from the cache.
	tmpdir="$(mktemp -d)"
	go build -o "$tmpdir/rulelearn" ./cmd/rulelearn
	go build -o "$tmpdir/dbtrun" ./cmd/dbtrun
	go build -o "$tmpdir/ruleserve" ./cmd/ruleserve

	"$tmpdir/rulelearn" -out "$tmpdir/rules.txt" >"$tmpdir/rl.out" 2>&1
	"$tmpdir/ruleserve" -rules "$tmpdir/rules.txt" -addr 127.0.0.1:0 \
		>"$tmpdir/rs.out" 2>"$tmpdir/rs.err" &
	rs_pid=$!
	wait_for_line "$tmpdir/rs.err" '^ruleserve: listening on ' 100 || {
		echo "ci.sh: ruleserve never announced its address" >&2
		exit 1
	}
	addr="$(sed -n 's/^ruleserve: listening on //p' "$tmpdir/rs.err")"
	"$tmpdir/dbtrun" -bench mcf -backend rules -rules-url "$addr" \
		-rules-cache "$tmpdir/cache" -json >"$tmpdir/warm.json" 2>"$tmpdir/warm.err"
	kill "$rs_pid" 2>/dev/null || true
	wait "$rs_pid" 2>/dev/null || true

	if "$tmpdir/dbtrun" -bench mcf -backend rules -rules-url "$addr" \
		-rules-cache "$tmpdir/cache" -rules-retries 1 -rules-timeout 2s \
		-json >"$tmpdir/cold.json" 2>"$tmpdir/cold.err"; then :; else
		echo "ci.sh: chaos smoke: dbtrun with dead server + cache exited nonzero" >&2
		cat "$tmpdir/cold.err" >&2
		exit 1
	fi
	grep -q 'using cached snapshot' "$tmpdir/cold.err" || {
		echo "ci.sh: chaos smoke: no cached-snapshot warning on stderr" >&2
		exit 1
	}
	for field in ret guest_instrs dyn_covered; do
		want="$(json_field "$tmpdir/warm.json" "$field")"
		got="$(json_field "$tmpdir/cold.json" "$field")"
		if [ -z "$want" ] || [ "$want" != "$got" ]; then
			echo "ci.sh: chaos smoke: $field diverges (served '$want', cached '$got')" >&2
			exit 1
		fi
	done
	# With no cache either, the run still degrades to pure TCG, exit 0.
	if "$tmpdir/dbtrun" -bench mcf -backend rules -rules-url "$addr" \
		-rules-retries 1 -rules-timeout 2s \
		-json >"$tmpdir/tcg.json" 2>"$tmpdir/tcg.err"; then :; else
		echo "ci.sh: chaos smoke: dbtrun with dead server and no cache exited nonzero" >&2
		exit 1
	fi
	grep -q 'pure TCG fallback' "$tmpdir/tcg.err" || {
		echo "ci.sh: chaos smoke: no pure-TCG warning on stderr" >&2
		exit 1
	}
	rm -rf "$tmpdir"
	echo "ci.sh: chaos cache-fallback smoke OK (cached run matches served run, no-cache run degrades cleanly)"
}

run_mine() {
	# The mining subsystem's unit surface: proposal-source well-formedness,
	# dedup/budget discipline, eviction semantics, profile gap extraction,
	# the window-edge ExtractCombined contracts the superblock source leans
	# on, batched store admission, and hit-attribution purity.
	go test ./mine -count=1
	go test ./learn -count=1 -run '^TestExtractCombined'
	go test ./rules -count=1 -run '^TestAddAll'
	go test ./dbt -count=1 -run '^(TestRuleHitsStatsInvariance|TestBailShape)$'
	# The dedup guarantee under fuzz: the candidate key is injective over
	# mutated candidates and deterministic across processes (the counter
	# assertion lives in the fuzz body).
	go test ./mine -run '^$' -fuzz '^FuzzMineCandidateKey$' -fuzztime "$fuzztime"
	# The subsystem's acceptance gate: mining must raise dynamic rule
	# coverage on mcf without changing the observable execution, via rules
	# in the mined ID space.
	go test ./bench -count=1 -timeout 10m -v -run '^TestMineDifferentialGate$'

	# End-to-end flywheel smoke on the real binaries: rulelearn writes the
	# line-paired baseline, a dbtrun against it pins the pre-mining
	# numbers, then a ruleminer seeded from a ruleserve snapshot mines for
	# a few rounds and a `dbtrun -rules-watch` subscribed to the miner
	# must reproduce ret and guest_instrs exactly while strictly beating
	# the baseline's dyn_covered.
	tmpdir="$(mktemp -d)"
	go build -o "$tmpdir/rulelearn" ./cmd/rulelearn
	go build -o "$tmpdir/dbtrun" ./cmd/dbtrun
	go build -o "$tmpdir/ruleserve" ./cmd/ruleserve
	go build -o "$tmpdir/ruleminer" ./cmd/ruleminer

	"$tmpdir/rulelearn" -out "$tmpdir/rules.txt" >"$tmpdir/rl.out" 2>&1
	"$tmpdir/dbtrun" -bench mcf -backend rules -rules "$tmpdir/rules.txt" \
		-json >"$tmpdir/base.json"

	"$tmpdir/ruleserve" -rules "$tmpdir/rules.txt" -addr 127.0.0.1:0 \
		>"$tmpdir/rs.out" 2>"$tmpdir/rs.err" &
	rs_pid=$!
	wait_for_line "$tmpdir/rs.err" '^ruleserve: listening on ' 100 || {
		echo "ci.sh: ruleserve never announced its address" >&2
		exit 1
	}
	seed_addr="$(sed -n 's/^ruleserve: listening on //p' "$tmpdir/rs.err")"

	"$tmpdir/ruleminer" -bench mcf -rules-url "$seed_addr" -addr 127.0.0.1:0 \
		-rounds 4 >"$tmpdir/rm.out" 2>"$tmpdir/rm.err" &
	rm_pid=$!
	wait_for_line "$tmpdir/rm.err" '^ruleminer: listening on ' 100 || {
		echo "ci.sh: ruleminer never announced its address" >&2
		cat "$tmpdir/rm.err" >&2
		exit 1
	}
	mine_addr="$(sed -n 's/^ruleminer: listening on //p' "$tmpdir/rm.err")"
	# Let the flywheel finish all rounds so the subscribed run sees the
	# full mined store (mining keeps serving after "mining done").
	wait_for_line "$tmpdir/rm.err" '^ruleminer: mining done' 3000 || {
		echo "ci.sh: ruleminer never finished its rounds" >&2
		cat "$tmpdir/rm.err" >&2
		exit 1
	}
	"$tmpdir/dbtrun" -bench mcf -backend rules -rules-url "$mine_addr" \
		-rules-watch -json >"$tmpdir/mined.json" 2>"$tmpdir/dr.err"
	kill "$rm_pid" "$rs_pid" 2>/dev/null || true
	wait "$rm_pid" "$rs_pid" 2>/dev/null || true

	grep -q '[1-9][0-9]* added' "$tmpdir/rm.err" || {
		echo "ci.sh: mine smoke: no round ever added a mined rule" >&2
		cat "$tmpdir/rm.err" >&2
		exit 1
	}
	for field in ret guest_instrs; do
		want="$(json_field "$tmpdir/base.json" "$field")"
		got="$(json_field "$tmpdir/mined.json" "$field")"
		if [ -z "$want" ] || [ "$want" != "$got" ]; then
			echo "ci.sh: mine smoke: $field diverges (baseline '$want', mined '$got')" >&2
			exit 1
		fi
	done
	base_cov="$(json_field "$tmpdir/base.json" dyn_covered)"
	mined_cov="$(json_field "$tmpdir/mined.json" dyn_covered)"
	if [ -z "$base_cov" ] || [ -z "$mined_cov" ] || [ "$mined_cov" -le "$base_cov" ]; then
		echo "ci.sh: mine smoke: dyn_covered did not increase ($base_cov -> $mined_cov)" >&2
		exit 1
	fi
	rm -rf "$tmpdir"
	echo "ci.sh: mining smoke OK (ret/guest_instrs identical, dyn_covered $base_cov -> $mined_cov)"
}

case "$stage" in
check) run_check ;;
race) run_race ;;
fuzz) run_fuzz ;;
faults) run_faults ;;
bench) run_bench ;;
tiers) run_tiers ;;
telemetry) run_telemetry ;;
dist) run_dist ;;
chaos) run_chaos ;;
mine) run_mine ;;
all)
	run_check
	run_race
	fuzztime="${FUZZTIME:-5s}"
	run_fuzz
	run_faults
	run_bench
	run_tiers
	run_telemetry
	run_dist
	run_chaos
	run_mine
	;;
*)
	echo "ci.sh: unknown stage '$stage' (want check|race|fuzz|bench|tiers|all|faults|telemetry|dist|chaos|mine)" >&2
	exit 2
	;;
esac
