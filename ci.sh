#!/bin/sh
# ci.sh — the single CI entrypoint. The GitHub workflow and local
# pre-commit run the exact same stages through this script, so "green in
# CI" and "green on my machine" cannot drift apart.
#
# Usage:
#   ./ci.sh check   # go vet + go build + go test over every package
#   ./ci.sh race    # race detector over the concurrent packages
#   ./ci.sh fuzz    # fuzz-smoke: each native fuzz target for $FUZZTIME (30s)
#   ./ci.sh faults  # fault-injection matrix + quarantine/refreeze race gate
#   ./ci.sh bench   # bench guard: fig8 quick sweep + parallel-learn speedup gate
#   ./ci.sh telemetry # disarmed-overhead gate + live /metrics endpoint smoke
#   ./ci.sh all     # everything above (fuzz shortened to 5s), for pre-commit
set -eu

stage="${1:-all}"
fuzztime="${FUZZTIME:-30s}"

run_check() {
	go vet ./...
	go build ./...
	go test ./...
}

run_race() {
	# Gates the concurrent code: the learn worker pool, the thread-safe
	# rule store, and the DBT engine that consumes the store.
	go test -race ./learn/... ./rules/... ./dbt/...
}

run_fuzz() {
	# Each native fuzz target gets a bounded smoke run; failures reproduce
	# with the seed corpus plus whatever the run discovers.
	go test ./codegen -run '^$' -fuzz '^FuzzDifferentialCompile$' -fuzztime "$fuzztime"
	go test ./dbt -run '^$' -fuzz '^FuzzBackendsAgree$' -fuzztime "$fuzztime"
	go test ./dbt -run '^$' -fuzz '^FuzzEngineRecovers$' -fuzztime "$fuzztime"
	go test ./rules -run '^$' -fuzz '^FuzzIndexMatchesStore$' -fuzztime "$fuzztime"
}

run_faults() {
	# Differential recovery gate: every registered engine injection point is
	# fired once and the run must finish with the interpreter's exact result
	# and guest-instruction count, the faulting rule quarantined, and the
	# next Freeze() excluding it.
	go test ./dbt -count=1 -v \
		-run '^(TestFaultInjectionMatrix|TestExecFaultQuarantinesRuleCoveredTB|TestPersistentFaultSurfaces|TestEngineInvalidate|TestStaleGenerationBackstop|TestInvalidateRangeClamps)$'
	# Learner containment: an injected per-candidate panic lands in the
	# crash column and merges stay byte-identical at every -jobs value.
	go test ./learn -count=1 -run '^(TestCandidatePanicContained|TestSolverMaybeInjection)$'
	# Quarantine/refreeze under the race detector: writers quarantining
	# against readers freezing snapshots, as a faulting engine does against
	# concurrent translation threads.
	go test -race ./rules -count=1 -run '^TestStoreConcurrent'
	go test -race ./dbt -count=1 -run '^(TestFaultInjectionMatrix|TestExecFaultQuarantinesRuleCoveredTB)$'
}

run_bench() {
	# The fig8 quick sweep must complete without panic inside the timeout,
	# parallel learning must hit its speedup gate (auto-skipped below 4
	# CPUs), the frozen rule index must beat the locked store by its gate,
	# and the simulated-cycle model must match the pinned golden stats.
	go test ./bench -count=1 -timeout 15m -v \
		-run '^(TestFig8Quick|TestParallelLearnSpeedup|TestLongestMatchSpeedup|TestStatsGolden)$'
	# Machine-readable perf trajectory: the fast-path microbenchmarks and
	# the learn benchmarks, as benchstat-convertible JSON.
	bench_out="$(go test ./bench -run '^$' -count=1 -timeout 15m \
		-bench '^(BenchmarkLongestMatch|BenchmarkDispatch|BenchmarkDispatchTelemetry|BenchmarkLearnSerial|BenchmarkLearnParallel)$')"
	printf '%s\n' "$bench_out"
	printf '%s\n' "$bench_out" | go run ./cmd/benchjson > BENCH_3.json
	echo "ci.sh: wrote BENCH_3.json"
}

# fetch URL to stdout, with whichever http client the machine has.
fetch_url() {
	if command -v curl >/dev/null 2>&1; then
		curl -fsS "$1"
	else
		wget -qO- "$1"
	fi
}

# wait_tel_addr STDERR_FILE: poll for the "telemetry: listening on ADDR"
# announcement and print the bound address.
wait_tel_addr() {
	i=0
	while [ "$i" -lt 100 ]; do
		addr="$(sed -n 's/^telemetry: listening on //p' "$1" 2>/dev/null)"
		if [ -n "$addr" ]; then
			printf '%s' "$addr"
			return 0
		fi
		i=$((i + 1))
		sleep 0.1
	done
	return 1
}

run_telemetry() {
	# The subsystem's two contracts, as tests: armed telemetry observes the
	# engine without perturbing the deterministic cycle model, and an
	# attached-but-disarmed registry costs within 5% of no registry at all
	# on the dispatch hot loop.
	go test ./internal/telemetry -count=1
	go test ./dbt -count=1 -run '^TestTelemetry'
	go test ./bench -count=1 -v -timeout 10m -run '^TestTelemetryDisarmedOverhead$'

	# Endpoint smoke against live processes: rulelearn must serve nonzero
	# per-phase learner timings, then dbtrun (rules backend, on the rules
	# that learning just wrote) must serve nonzero dbt_dispatch_total and
	# rules_freeze_total. Both bind an ephemeral port and linger after the
	# work so the scrape cannot race process exit.
	tmpdir="$(mktemp -d)"
	go build -o "$tmpdir/rulelearn" ./cmd/rulelearn
	go build -o "$tmpdir/dbtrun" ./cmd/dbtrun

	"$tmpdir/rulelearn" -out "$tmpdir/rules.txt" -metrics-addr 127.0.0.1:0 \
		-metrics-linger 60s >"$tmpdir/rl.out" 2>"$tmpdir/rl.err" &
	rl_pid=$!
	addr="$(wait_tel_addr "$tmpdir/rl.err")" || {
		echo "ci.sh: rulelearn never announced its telemetry address" >&2
		exit 1
	}
	i=0
	while [ "$i" -lt 600 ] && ! grep -q '^wrote' "$tmpdir/rl.out"; do
		i=$((i + 1))
		sleep 0.1
	done
	fetch_url "http://$addr/metrics" >"$tmpdir/rl.metrics"
	kill "$rl_pid" 2>/dev/null || true
	wait "$rl_pid" 2>/dev/null || true
	grep -Eq '^learn_phase_ns_total\{phase="verify",worker="0"\} [0-9]*[1-9][0-9]*$' "$tmpdir/rl.metrics" || {
		echo "ci.sh: rulelearn /metrics lacks nonzero verify-phase timing" >&2
		exit 1
	}
	grep -Eq '^rules_add_total [0-9]*[1-9][0-9]*$' "$tmpdir/rl.metrics" || {
		echo "ci.sh: rulelearn /metrics lacks nonzero rules_add_total" >&2
		exit 1
	}

	"$tmpdir/dbtrun" -bench mcf -backend rules -rules "$tmpdir/rules.txt" \
		-metrics-addr 127.0.0.1:0 -metrics-linger 60s \
		>"$tmpdir/dr.out" 2>"$tmpdir/dr.err" &
	dr_pid=$!
	addr="$(wait_tel_addr "$tmpdir/dr.err")" || {
		echo "ci.sh: dbtrun never announced its telemetry address" >&2
		exit 1
	}
	i=0
	while [ "$i" -lt 600 ] && ! grep -q '^rule hits' "$tmpdir/dr.out"; do
		i=$((i + 1))
		sleep 0.1
	done
	fetch_url "http://$addr/metrics" >"$tmpdir/dr.metrics"
	kill "$dr_pid" 2>/dev/null || true
	wait "$dr_pid" 2>/dev/null || true
	grep -Eq '^dbt_dispatch_total [0-9]*[1-9][0-9]*$' "$tmpdir/dr.metrics" || {
		echo "ci.sh: dbtrun /metrics lacks nonzero dbt_dispatch_total" >&2
		exit 1
	}
	grep -Eq '^rules_freeze_total [0-9]*[1-9][0-9]*$' "$tmpdir/dr.metrics" || {
		echo "ci.sh: dbtrun /metrics lacks nonzero rules_freeze_total" >&2
		exit 1
	}
	rm -rf "$tmpdir"
	echo "ci.sh: telemetry endpoint smoke OK"
}

case "$stage" in
check) run_check ;;
race) run_race ;;
fuzz) run_fuzz ;;
faults) run_faults ;;
bench) run_bench ;;
telemetry) run_telemetry ;;
all)
	run_check
	run_race
	fuzztime="${FUZZTIME:-5s}"
	run_fuzz
	run_faults
	run_bench
	run_telemetry
	;;
*)
	echo "ci.sh: unknown stage '$stage' (want check|race|fuzz|bench|all|faults|telemetry)" >&2
	exit 2
	;;
esac
