#!/bin/sh
# ci.sh — the single CI entrypoint. The GitHub workflow and local
# pre-commit run the exact same stages through this script, so "green in
# CI" and "green on my machine" cannot drift apart.
#
# Usage:
#   ./ci.sh check   # go vet + go build + go test over every package
#   ./ci.sh race    # race detector over the concurrent packages
#   ./ci.sh fuzz    # fuzz-smoke: each native fuzz target for $FUZZTIME (30s)
#   ./ci.sh faults  # fault-injection matrix + quarantine/refreeze race gate
#   ./ci.sh bench   # bench guard: fig8 quick sweep + parallel-learn speedup gate
#   ./ci.sh all     # everything above (fuzz shortened to 5s), for pre-commit
set -eu

stage="${1:-all}"
fuzztime="${FUZZTIME:-30s}"

run_check() {
	go vet ./...
	go build ./...
	go test ./...
}

run_race() {
	# Gates the concurrent code: the learn worker pool, the thread-safe
	# rule store, and the DBT engine that consumes the store.
	go test -race ./learn/... ./rules/... ./dbt/...
}

run_fuzz() {
	# Each native fuzz target gets a bounded smoke run; failures reproduce
	# with the seed corpus plus whatever the run discovers.
	go test ./codegen -run '^$' -fuzz '^FuzzDifferentialCompile$' -fuzztime "$fuzztime"
	go test ./dbt -run '^$' -fuzz '^FuzzBackendsAgree$' -fuzztime "$fuzztime"
	go test ./dbt -run '^$' -fuzz '^FuzzEngineRecovers$' -fuzztime "$fuzztime"
	go test ./rules -run '^$' -fuzz '^FuzzIndexMatchesStore$' -fuzztime "$fuzztime"
}

run_faults() {
	# Differential recovery gate: every registered engine injection point is
	# fired once and the run must finish with the interpreter's exact result
	# and guest-instruction count, the faulting rule quarantined, and the
	# next Freeze() excluding it.
	go test ./dbt -count=1 -v \
		-run '^(TestFaultInjectionMatrix|TestExecFaultQuarantinesRuleCoveredTB|TestPersistentFaultSurfaces|TestEngineInvalidate|TestStaleGenerationBackstop|TestInvalidateRangeClamps)$'
	# Learner containment: an injected per-candidate panic lands in the
	# crash column and merges stay byte-identical at every -jobs value.
	go test ./learn -count=1 -run '^(TestCandidatePanicContained|TestSolverMaybeInjection)$'
	# Quarantine/refreeze under the race detector: writers quarantining
	# against readers freezing snapshots, as a faulting engine does against
	# concurrent translation threads.
	go test -race ./rules -count=1 -run '^TestStoreConcurrent'
	go test -race ./dbt -count=1 -run '^(TestFaultInjectionMatrix|TestExecFaultQuarantinesRuleCoveredTB)$'
}

run_bench() {
	# The fig8 quick sweep must complete without panic inside the timeout,
	# parallel learning must hit its speedup gate (auto-skipped below 4
	# CPUs), the frozen rule index must beat the locked store by its gate,
	# and the simulated-cycle model must match the pinned golden stats.
	go test ./bench -count=1 -timeout 15m -v \
		-run '^(TestFig8Quick|TestParallelLearnSpeedup|TestLongestMatchSpeedup|TestStatsGolden)$'
	# Machine-readable perf trajectory: the fast-path microbenchmarks and
	# the learn benchmarks, as benchstat-convertible JSON.
	bench_out="$(go test ./bench -run '^$' -count=1 -timeout 15m \
		-bench '^(BenchmarkLongestMatch|BenchmarkDispatch|BenchmarkLearnSerial|BenchmarkLearnParallel)$')"
	printf '%s\n' "$bench_out"
	printf '%s\n' "$bench_out" | go run ./cmd/benchjson > BENCH_3.json
	echo "ci.sh: wrote BENCH_3.json"
}

case "$stage" in
check) run_check ;;
race) run_race ;;
fuzz) run_fuzz ;;
faults) run_faults ;;
bench) run_bench ;;
all)
	run_check
	run_race
	fuzztime="${FUZZTIME:-5s}"
	run_fuzz
	run_faults
	run_bench
	;;
*)
	echo "ci.sh: unknown stage '$stage' (want check|race|fuzz|bench|all|faults)" >&2
	exit 2
	;;
esac
