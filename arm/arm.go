// Package arm models the guest instruction set: a representative ARM32
// (A32) subset with the classic data-processing instructions (including the
// barrel shifter and S-flag variants), multiplies, word/byte loads and
// stores with immediate and scaled-register addressing, compares,
// conditional and linking branches, and push/pop register lists.
//
// The package provides four independent views of an instruction, all used
// by the reproduction:
//
//   - a structured representation (Instr) built by the parser or compiler,
//   - textual assembly syntax (Parse / String),
//   - a 32-bit machine encoding (Encode / Decode) faithful to ARM's
//     data-processing layout including the rotated 8-bit immediate rule,
//   - executable semantics, both concrete (Step on a State) and symbolic
//     (package-level SymExec on a SymState).
package arm

import "fmt"

// Reg is an ARM general-purpose register r0..r15.
type Reg uint8

// Register aliases.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	SP // r13
	LR // r14
	PC // r15
)

// NumRegs is the number of general-purpose registers.
const NumRegs = 16

// String returns the canonical register name.
func (r Reg) String() string {
	switch r {
	case SP:
		return "sp"
	case LR:
		return "lr"
	case PC:
		return "pc"
	default:
		return fmt.Sprintf("r%d", uint8(r))
	}
}

// Cond is an ARM condition code.
type Cond uint8

// Condition codes in encoding order.
const (
	EQ Cond = iota // Z
	NE             // !Z
	CS             // C
	CC             // !C
	MI             // N
	PL             // !N
	VS             // V
	VC             // !V
	HI             // C && !Z
	LS             // !C || Z
	GE             // N == V
	LT             // N != V
	GT             // !Z && N == V
	LE             // Z || N != V
	AL             // always
)

var condNames = [...]string{"eq", "ne", "cs", "cc", "mi", "pl", "vs", "vc",
	"hi", "ls", "ge", "lt", "gt", "le", "", "nv"}

// String returns the condition suffix ("" for AL).
func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond%d", uint8(c))
}

// Op is an ARM operation mnemonic.
type Op uint8

// Operations. The data-processing group (AND..MVN) mirrors ARM's 4-bit
// opcode field order so the encoder can derive the field directly.
const (
	AND Op = iota
	EOR
	SUB
	RSB
	ADD
	ADC
	SBC
	RSC
	TST
	TEQ
	CMP
	CMN
	ORR
	MOV
	BIC
	MVN
	// Non-data-processing operations follow.
	MUL
	MLA
	LDR
	LDRB
	STR
	STRB
	B
	BL
	BX
	PUSH
	POP
)

var opNames = [...]string{
	AND: "and", EOR: "eor", SUB: "sub", RSB: "rsb", ADD: "add", ADC: "adc",
	SBC: "sbc", RSC: "rsc", TST: "tst", TEQ: "teq", CMP: "cmp", CMN: "cmn",
	ORR: "orr", MOV: "mov", BIC: "bic", MVN: "mvn", MUL: "mul", MLA: "mla",
	LDR: "ldr", LDRB: "ldrb", STR: "str", STRB: "strb", B: "b", BL: "bl",
	BX: "bx", PUSH: "push", POP: "pop",
}

// String returns the mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op%d", uint8(o))
}

// IsDataProcessing reports whether o is in the data-processing group.
func (o Op) IsDataProcessing() bool { return o <= MVN }

// IsCompare reports whether o only sets flags (TST/TEQ/CMP/CMN).
func (o Op) IsCompare() bool { return o == TST || o == TEQ || o == CMP || o == CMN }

// IsBranch reports whether o transfers control.
func (o Op) IsBranch() bool { return o == B || o == BL || o == BX }

// IsMemory reports whether o accesses memory (excluding push/pop).
func (o Op) IsMemory() bool { return o == LDR || o == LDRB || o == STR || o == STRB }

// ShiftKind is a barrel-shifter operation.
type ShiftKind uint8

// Shift kinds in encoding order.
const (
	LSL ShiftKind = iota
	LSR
	ASR
	ROR
)

var shiftNames = [...]string{"lsl", "lsr", "asr", "ror"}

// String returns the shift mnemonic.
func (s ShiftKind) String() string { return shiftNames[s] }

// Shift is an immediate barrel-shifter application. Amount 0 with kind LSL
// means "no shift".
type Shift struct {
	Kind   ShiftKind
	Amount uint8
}

// None reports whether the shift is a no-op.
func (s Shift) None() bool { return s.Kind == LSL && s.Amount == 0 }

// Operand2 is the flexible second operand of data-processing instructions:
// either a rotated immediate or a (possibly shifted) register.
type Operand2 struct {
	IsImm bool
	Imm   uint32
	Reg   Reg
	Shift Shift
}

// ImmOp2 builds an immediate operand.
func ImmOp2(v uint32) Operand2 { return Operand2{IsImm: true, Imm: v} }

// RegOp2 builds a plain register operand.
func RegOp2(r Reg) Operand2 { return Operand2{Reg: r} }

// ShiftedOp2 builds a shifted register operand.
func ShiftedOp2(r Reg, k ShiftKind, amount uint8) Operand2 {
	return Operand2{Reg: r, Shift: Shift{Kind: k, Amount: amount}}
}

// Mem is a load/store addressing expression:
//
//	[base, #imm]              (HasIndex false)
//	[base, index, shift]      (HasIndex true)
//	[base, -index]            (HasIndex true, NegIndex true)
//
// Only offset addressing (no writeback) is modeled; the compiler substrate
// never emits pre/post-indexed writeback forms.
type Mem struct {
	Base     Reg
	Imm      int32
	HasIndex bool
	Index    Reg
	NegIndex bool
	Shift    Shift
}

// Instr is one ARM instruction. Fields are used according to Op:
//
//	data-processing: Rd, Rn, Op2 (MOV/MVN ignore Rn; compares ignore Rd)
//	MUL:  Rd, Rn(=Rm source1), Op2.Reg(source2);  MLA adds Ra
//	LDR/STR (and B variants): Rd (data), Mem
//	B/BL: Target (instruction index within the function)
//	BX:   Rn (target register)
//	PUSH/POP: RegList bitmask
type Instr struct {
	Op       Op
	Cond     Cond
	SetFlags bool
	Rd, Rn   Reg
	Ra       Reg
	Op2      Operand2
	Mem      Mem
	Target   int32
	RegList  uint16
	// Line is the source line this instruction was compiled from (0 when
	// unknown); the learner groups instructions by this field.
	Line int32
}

// Predicated reports whether the instruction executes conditionally
// (and is not a plain conditional branch).
func (i Instr) Predicated() bool {
	return i.Cond != AL && i.Op != B
}

// IsCondBranch reports whether i is a conditional direct branch.
func (i Instr) IsCondBranch() bool { return i.Op == B && i.Cond != AL }

// Defs returns the general-purpose registers written by i (excluding PC
// effects of branches).
func (i Instr) Defs() []Reg {
	switch {
	case i.Op.IsCompare(), i.Op == STR, i.Op == STRB, i.Op.IsBranch():
		if i.Op == BL {
			return []Reg{LR}
		}
		return nil
	case i.Op == PUSH:
		return []Reg{SP}
	case i.Op == POP:
		out := []Reg{SP}
		for r := Reg(0); r < NumRegs; r++ {
			if i.RegList&(1<<r) != 0 {
				out = append(out, r)
			}
		}
		return out
	default:
		return []Reg{i.Rd}
	}
}

// Uses returns the general-purpose registers read by i.
func (i Instr) Uses() []Reg {
	var out []Reg
	add := func(r Reg) { out = append(out, r) }
	switch i.Op {
	case MOV, MVN:
		if !i.Op2.IsImm {
			add(i.Op2.Reg)
		}
	case MUL:
		add(i.Rn)
		add(i.Op2.Reg)
	case MLA:
		add(i.Rn)
		add(i.Op2.Reg)
		add(i.Ra)
	case LDR, LDRB:
		add(i.Mem.Base)
		if i.Mem.HasIndex {
			add(i.Mem.Index)
		}
	case STR, STRB:
		add(i.Rd)
		add(i.Mem.Base)
		if i.Mem.HasIndex {
			add(i.Mem.Index)
		}
	case B, BL:
	case BX:
		add(i.Rn)
	case PUSH:
		add(SP)
		for r := Reg(0); r < NumRegs; r++ {
			if i.RegList&(1<<r) != 0 {
				add(r)
			}
		}
	case POP:
		add(SP)
	default: // data-processing with Rn
		add(i.Rn)
		if !i.Op2.IsImm {
			add(i.Op2.Reg)
		}
	}
	return out
}

// ReadsFlags reports whether i's execution depends on NZCV (condition
// predicates or carry-in arithmetic).
func (i Instr) ReadsFlags() bool {
	if i.Cond != AL {
		return true
	}
	return i.Op == ADC || i.Op == SBC || i.Op == RSC
}

// WritesFlags reports whether i updates any of NZCV.
func (i Instr) WritesFlags() bool {
	return i.SetFlags || i.Op.IsCompare()
}

// EncodeImm attempts to encode v as an ARM rotated 8-bit immediate,
// returning the 12-bit shifter_operand field and true on success. This is
// the real A32 constraint the paper mentions when discussing host-ISA
// immediate ranges (§5).
func EncodeImm(v uint32) (uint16, bool) {
	for rot := uint32(0); rot < 32; rot += 2 {
		rotated := v<<rot | v>>(32-rot)
		if rot == 0 {
			rotated = v
		}
		if rotated <= 0xff {
			return uint16((rot/2)<<8 | rotated), true
		}
	}
	return 0, false
}

// ImmEncodable reports whether v fits the rotated 8-bit immediate rule.
func ImmEncodable(v uint32) bool {
	_, ok := EncodeImm(v)
	return ok
}
