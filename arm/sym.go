package arm

import (
	"fmt"

	"dbtrules/expr"
)

// MemRead records one symbolic memory read: the address expression at the
// time of the access and the symbol produced for the loaded value.
type MemRead struct {
	Addr *expr.Expr
	Val  *expr.Expr
	Size int // bytes
}

// MemWrite records one symbolic memory write. Addr is captured at the time
// of the store (per §3.3 of the paper: registers used in the address may be
// overwritten later, so the equivalence check must use the recorded
// expression, not recompute it from the final state).
type MemWrite struct {
	Addr *expr.Expr
	Val  *expr.Expr
	Size int
}

// ReadHook supplies the value for a symbolic memory read. Implementations
// return an expression of width 8*size. The learner uses this to give
// guest and host reads of the same mapped variable the same symbol.
type ReadHook func(addr *expr.Expr, size int) *expr.Expr

// ImmField identifies which immediate field of an instruction an ImmHook
// is being asked about.
type ImmField uint8

// Immediate fields subject to symbolic substitution.
const (
	ImmFieldOp2 ImmField = iota
	ImmFieldMem
)

// ImmHook lets the learner substitute a symbolic expression for an
// immediate operand (parameterized immediates are verified for all values,
// not just the concrete one observed). instr is the index within the
// sequence passed to SymExec; return nil to keep the concrete value.
type ImmHook func(instr int, field ImmField, v uint32) *expr.Expr

// SymState is a symbolic ARM machine state: every register and flag holds
// a bitvector expression over the initial-state symbols.
type SymState struct {
	R          [NumRegs]*expr.Expr
	N, Z, C, V *expr.Expr
	Reads      []MemRead
	Writes     []MemWrite
	// BranchCond is set when the last executed instruction was a
	// conditional branch: the width-1 condition under which it is taken.
	BranchCond *expr.Expr
	// RegDefined marks registers assigned during execution.
	RegDefined [NumRegs]bool
	// FlagsDefined marks each of N,Z,C,V assigned during execution.
	FlagsDefined [4]bool

	readHook ReadHook
	immHook  ImmHook
	curInstr int
	prefix   string
}

// SetImmHook installs an immediate-substitution hook (see ImmHook).
func (s *SymState) SetImmHook(h ImmHook) { s.immHook = h }

// immExpr resolves an immediate field through the hook.
func (s *SymState) immExpr(field ImmField, v uint32) *expr.Expr {
	if s.immHook != nil {
		if e := s.immHook(s.curInstr, field, v); e != nil {
			return e
		}
	}
	return expr.Const(32, uint64(v))
}

// NewSymState returns a state whose registers and flags are free symbols
// named with the given prefix (e.g. "g" yields g_r0..g_r15, g_n..g_v).
// hook may be nil, in which case each distinct address expression yields a
// fresh load symbol (repeated reads of one address agree).
func NewSymState(prefix string, hook ReadHook) *SymState {
	s := &SymState{prefix: prefix, readHook: hook}
	for i := range s.R {
		s.R[i] = expr.Sym(32, fmt.Sprintf("%s_r%d", prefix, i))
	}
	s.N = expr.Sym(1, prefix+"_n")
	s.Z = expr.Sym(1, prefix+"_z")
	s.C = expr.Sym(1, prefix+"_c")
	s.V = expr.Sym(1, prefix+"_v")
	if s.readHook == nil {
		byAddr := map[string]*expr.Expr{}
		s.readHook = func(addr *expr.Expr, size int) *expr.Expr {
			k := fmt.Sprintf("%d:%s", size, addr.Key())
			if v, ok := byAddr[k]; ok {
				return v
			}
			v := expr.Sym(8*size, fmt.Sprintf("%s_mem%d", prefix, len(byAddr)))
			byAddr[k] = v
			return v
		}
	}
	return s
}

// CondExpr returns the width-1 expression for condition c over the current
// symbolic flags.
func (s *SymState) CondExpr(c Cond) *expr.Expr {
	switch c {
	case EQ:
		return s.Z
	case NE:
		return expr.Not(s.Z)
	case CS:
		return s.C
	case CC:
		return expr.Not(s.C)
	case MI:
		return s.N
	case PL:
		return expr.Not(s.N)
	case VS:
		return s.V
	case VC:
		return expr.Not(s.V)
	case HI:
		return expr.And(s.C, expr.Not(s.Z))
	case LS:
		return expr.Or(expr.Not(s.C), s.Z)
	case GE:
		return expr.Not(expr.Xor(s.N, s.V))
	case LT:
		return expr.Xor(s.N, s.V)
	case GT:
		return expr.And(expr.Not(s.Z), expr.Not(expr.Xor(s.N, s.V)))
	case LE:
		return expr.Or(s.Z, expr.Xor(s.N, s.V))
	default:
		return expr.True
	}
}

func (s *SymState) setReg(r Reg, v *expr.Expr) {
	s.R[r] = v
	s.RegDefined[r] = true
}

func (s *SymState) setNZ(v *expr.Expr) {
	s.N = expr.Extract(v, 31, 31)
	s.Z = expr.Eq(v, expr.Const(32, 0))
	s.FlagsDefined[0] = true
	s.FlagsDefined[1] = true
}

func (s *SymState) shifterOperand(o Operand2) (val, carry *expr.Expr) {
	if o.IsImm {
		return s.immExpr(ImmFieldOp2, o.Imm), nil
	}
	v := s.R[o.Reg]
	if o.Shift.None() {
		return v, nil
	}
	n := uint32(o.Shift.Amount)
	amt := expr.Const(32, uint64(n))
	switch o.Shift.Kind {
	case LSL:
		return expr.Shl(v, amt), expr.Extract(v, int(32-n), int(32-n))
	case LSR:
		return expr.LShr(v, amt), expr.Extract(v, int(n-1), int(n-1))
	case ASR:
		return expr.AShr(v, amt), expr.Extract(v, int(n-1), int(n-1))
	default: // ROR
		ror := expr.Or(expr.LShr(v, amt), expr.Shl(v, expr.Const(32, uint64(32-n))))
		return ror, expr.Extract(v, int(n-1), int(n-1))
	}
}

// MemAddrExpr builds the effective-address expression of a memory operand.
func (s *SymState) MemAddrExpr(m Mem) *expr.Expr {
	addr := s.R[m.Base]
	if m.HasIndex {
		idx := s.R[m.Index]
		if !m.Shift.None() {
			amt := expr.Const(32, uint64(m.Shift.Amount))
			switch m.Shift.Kind {
			case LSL:
				idx = expr.Shl(idx, amt)
			case LSR:
				idx = expr.LShr(idx, amt)
			case ASR:
				idx = expr.AShr(idx, amt)
			case ROR:
				idx = expr.Or(expr.LShr(idx, amt),
					expr.Shl(idx, expr.Const(32, uint64(32-m.Shift.Amount))))
			}
		}
		if m.NegIndex {
			addr = expr.Sub(addr, idx)
		} else {
			addr = expr.Add(addr, idx)
		}
	}
	if m.Imm != 0 || s.immHook != nil {
		addr = expr.Add(addr, s.immExpr(ImmFieldMem, uint32(m.Imm)))
	}
	return addr
}

// symAddWithCarry is the 33-bit-wide add used for the arithmetic group.
func symAddWithCarry(a, b, cin *expr.Expr) (res, c, v *expr.Expr) {
	wide := expr.Add(expr.ZeroExt(a, 33), expr.ZeroExt(b, 33), expr.ZeroExt(cin, 33))
	res = expr.Extract(wide, 31, 0)
	c = expr.Extract(wide, 32, 32)
	ov := expr.And(expr.Xor(a, res), expr.Xor(b, res))
	v = expr.Extract(ov, 31, 31)
	return res, c, v
}

// SymStep symbolically executes one instruction. Instructions the learner
// cannot handle (predicated execution, calls, indirect branches, push/pop)
// return an error; a conditional direct branch is legal only as the final
// instruction of a sequence, which SymExec enforces.
func (s *SymState) SymStep(in Instr) error {
	if in.Predicated() {
		return fmt.Errorf("arm: symbolic execution of predicated %s", in)
	}
	switch in.Op {
	case AND, EOR, ORR, BIC, MOV, MVN, TST, TEQ:
		val, shC := s.shifterOperand(in.Op2)
		var res *expr.Expr
		switch in.Op {
		case AND, TST:
			res = expr.And(s.R[in.Rn], val)
		case EOR, TEQ:
			res = expr.Xor(s.R[in.Rn], val)
		case ORR:
			res = expr.Or(s.R[in.Rn], val)
		case BIC:
			res = expr.And(s.R[in.Rn], expr.Not(val))
		case MOV:
			res = val
		case MVN:
			res = expr.Not(val)
		}
		if in.SetFlags {
			s.setNZ(res)
			if shC != nil {
				s.C = shC
				s.FlagsDefined[2] = true
			}
		}
		if !in.Op.IsCompare() {
			s.setReg(in.Rd, res)
		}
	case ADD, ADC, SUB, SBC, RSB, RSC, CMP, CMN:
		val, _ := s.shifterOperand(in.Op2)
		a, b := s.R[in.Rn], val
		cin := expr.False
		switch in.Op {
		case ADD, CMN:
		case ADC:
			cin = s.C
		case SUB, CMP:
			b = expr.Not(b)
			cin = expr.True
		case SBC:
			b = expr.Not(b)
			cin = s.C
		case RSB:
			a, b = val, expr.Not(s.R[in.Rn])
			cin = expr.True
		case RSC:
			a, b = val, expr.Not(s.R[in.Rn])
			cin = s.C
		}
		res, c, v := symAddWithCarry(a, b, cin)
		if in.SetFlags {
			s.setNZ(res)
			s.C = c
			s.V = v
			s.FlagsDefined[2] = true
			s.FlagsDefined[3] = true
		}
		if !in.Op.IsCompare() {
			s.setReg(in.Rd, res)
		}
	case MUL:
		res := expr.Mul(s.R[in.Rn], s.R[in.Op2.Reg])
		if in.SetFlags {
			s.setNZ(res)
		}
		s.setReg(in.Rd, res)
	case MLA:
		res := expr.Add(expr.Mul(s.R[in.Rn], s.R[in.Op2.Reg]), s.R[in.Ra])
		if in.SetFlags {
			s.setNZ(res)
		}
		s.setReg(in.Rd, res)
	case LDR:
		addr := s.MemAddrExpr(in.Mem)
		val := s.readHook(addr, 4)
		s.Reads = append(s.Reads, MemRead{Addr: addr, Val: val, Size: 4})
		s.setReg(in.Rd, val)
	case LDRB:
		addr := s.MemAddrExpr(in.Mem)
		val := s.readHook(addr, 1)
		s.Reads = append(s.Reads, MemRead{Addr: addr, Val: val, Size: 1})
		s.setReg(in.Rd, expr.ZeroExt(val, 32))
	case STR:
		addr := s.MemAddrExpr(in.Mem)
		s.Writes = append(s.Writes, MemWrite{Addr: addr, Val: s.R[in.Rd], Size: 4})
	case STRB:
		addr := s.MemAddrExpr(in.Mem)
		s.Writes = append(s.Writes, MemWrite{Addr: addr, Val: expr.Extract(s.R[in.Rd], 7, 0), Size: 1})
	case B:
		s.BranchCond = s.CondExpr(in.Cond)
	default:
		return fmt.Errorf("arm: symbolic execution of %s not supported", in)
	}
	return nil
}

// SymExec symbolically executes a straight-line sequence. A conditional
// branch may appear only as the final instruction.
func (s *SymState) SymExec(seq []Instr) error {
	for i, in := range seq {
		s.curInstr = i
		if in.Op.IsBranch() && i != len(seq)-1 {
			return fmt.Errorf("arm: branch %s not at end of sequence", in)
		}
		if in.Op == BL || in.Op == BX || in.Op == PUSH || in.Op == POP {
			return fmt.Errorf("arm: symbolic execution of %s not supported", in)
		}
		if err := s.SymStep(in); err != nil {
			return err
		}
	}
	return nil
}
