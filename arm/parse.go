package arm

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses one instruction in the syntax produced by Instr.String.
// Mnemonics accept optional "s" and condition suffixes (e.g. "subs",
// "addne", "subscs"). Branch targets are instruction indices.
func Parse(s string) (Instr, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Instr{}, fmt.Errorf("arm: empty instruction")
	}
	sp := strings.IndexAny(s, " \t")
	mnem := s
	rest := ""
	if sp >= 0 {
		mnem = s[:sp]
		rest = strings.TrimSpace(s[sp+1:])
	}
	op, setFlags, cond, err := parseMnemonic(strings.ToLower(mnem))
	if err != nil {
		return Instr{}, err
	}
	in := Instr{Op: op, SetFlags: setFlags, Cond: cond}

	args, err := splitArgs(rest)
	if err != nil {
		return Instr{}, err
	}
	want := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("arm: %s wants %d operands, got %d in %q", op, n, len(args), s)
		}
		return nil
	}
	switch op {
	case MOV, MVN:
		if len(args) < 2 {
			return Instr{}, fmt.Errorf("arm: %s wants 2 operands in %q", op, s)
		}
		if in.Rd, err = parseReg(args[0]); err != nil {
			return Instr{}, err
		}
		if in.Op2, err = parseOp2(args[1:]); err != nil {
			return Instr{}, err
		}
	case TST, TEQ, CMP, CMN:
		if len(args) < 2 {
			return Instr{}, fmt.Errorf("arm: %s wants 2 operands in %q", op, s)
		}
		if in.Rn, err = parseReg(args[0]); err != nil {
			return Instr{}, err
		}
		if in.Op2, err = parseOp2(args[1:]); err != nil {
			return Instr{}, err
		}
	case MUL:
		if err := want(3); err != nil {
			return Instr{}, err
		}
		if in.Rd, err = parseReg(args[0]); err != nil {
			return Instr{}, err
		}
		if in.Rn, err = parseReg(args[1]); err != nil {
			return Instr{}, err
		}
		var rm Reg
		if rm, err = parseReg(args[2]); err != nil {
			return Instr{}, err
		}
		in.Op2 = RegOp2(rm)
	case MLA:
		if err := want(4); err != nil {
			return Instr{}, err
		}
		if in.Rd, err = parseReg(args[0]); err != nil {
			return Instr{}, err
		}
		if in.Rn, err = parseReg(args[1]); err != nil {
			return Instr{}, err
		}
		var rm Reg
		if rm, err = parseReg(args[2]); err != nil {
			return Instr{}, err
		}
		in.Op2 = RegOp2(rm)
		if in.Ra, err = parseReg(args[3]); err != nil {
			return Instr{}, err
		}
	case LDR, LDRB, STR, STRB:
		if len(args) < 2 {
			return Instr{}, fmt.Errorf("arm: %s wants 2 operands in %q", op, s)
		}
		if in.Rd, err = parseReg(args[0]); err != nil {
			return Instr{}, err
		}
		if in.Mem, err = parseMem(strings.Join(args[1:], ", ")); err != nil {
			return Instr{}, err
		}
	case B, BL:
		if err := want(1); err != nil {
			return Instr{}, err
		}
		t, err := strconv.ParseInt(args[0], 10, 32)
		if err != nil {
			return Instr{}, fmt.Errorf("arm: bad branch target %q", args[0])
		}
		in.Target = int32(t)
	case BX:
		if err := want(1); err != nil {
			return Instr{}, err
		}
		if in.Rn, err = parseReg(args[0]); err != nil {
			return Instr{}, err
		}
	case PUSH, POP:
		list, err := parseRegList(rest)
		if err != nil {
			return Instr{}, err
		}
		in.RegList = list
	default: // three-operand data processing
		if len(args) < 3 {
			return Instr{}, fmt.Errorf("arm: %s wants 3+ operands in %q", op, s)
		}
		if in.Rd, err = parseReg(args[0]); err != nil {
			return Instr{}, err
		}
		if in.Rn, err = parseReg(args[1]); err != nil {
			return Instr{}, err
		}
		if in.Op2, err = parseOp2(args[2:]); err != nil {
			return Instr{}, err
		}
	}
	return in, nil
}

// MustParse is Parse for tests and tables of known-good assembly.
func MustParse(s string) Instr {
	in, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return in
}

// ParseSeq parses instructions separated by ';' or newlines.
func ParseSeq(s string) ([]Instr, error) {
	var out []Instr
	for _, line := range strings.FieldsFunc(s, func(r rune) bool { return r == ';' || r == '\n' }) {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		in, err := Parse(line)
		if err != nil {
			return nil, err
		}
		out = append(out, in)
	}
	return out, nil
}

// MustParseSeq is ParseSeq that panics on error.
func MustParseSeq(s string) []Instr {
	ins, err := ParseSeq(s)
	if err != nil {
		panic(err)
	}
	return ins
}

var mnemonicOps = map[string]Op{
	"and": AND, "eor": EOR, "sub": SUB, "rsb": RSB, "add": ADD, "adc": ADC,
	"sbc": SBC, "rsc": RSC, "tst": TST, "teq": TEQ, "cmp": CMP, "cmn": CMN,
	"orr": ORR, "mov": MOV, "bic": BIC, "mvn": MVN, "mul": MUL, "mla": MLA,
	"ldr": LDR, "ldrb": LDRB, "str": STR, "strb": STRB, "b": B, "bl": BL,
	"bx": BX, "push": PUSH, "pop": POP,
}

var condSuffixes = map[string]Cond{
	"eq": EQ, "ne": NE, "cs": CS, "cc": CC, "mi": MI, "pl": PL, "vs": VS,
	"vc": VC, "hi": HI, "ls": LS, "ge": GE, "lt": LT, "gt": GT, "le": LE,
}

func parseMnemonic(m string) (Op, bool, Cond, error) {
	// Longest-first match on the base mnemonic so "bls" parses as b+ls,
	// "bl" as branch-and-link, and "bic" as BIC (not b+ic).
	for l := len(m); l >= 1; l-- {
		base := m[:l]
		op, ok := mnemonicOps[base]
		if !ok {
			continue
		}
		suffix := m[l:]
		setFlags := false
		if strings.HasPrefix(suffix, "s") && !op.IsCompare() && op != B && op != BL && op != BX {
			setFlags = true
			suffix = suffix[1:]
		}
		cond := AL
		if suffix != "" {
			c, ok := condSuffixes[suffix]
			if !ok {
				continue
			}
			cond = c
		}
		if op.IsCompare() {
			setFlags = true
		}
		return op, setFlags, cond, nil
	}
	return 0, false, AL, fmt.Errorf("arm: unknown mnemonic %q", m)
}

// splitArgs splits on commas that are not inside brackets or braces.
func splitArgs(s string) ([]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var args []string
	depth := 0
	start := 0
	for i, r := range s {
		switch r {
		case '[', '{':
			depth++
		case ']', '}':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("arm: unbalanced brackets in %q", s)
			}
		case ',':
			if depth == 0 {
				args = append(args, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("arm: unbalanced brackets in %q", s)
	}
	args = append(args, strings.TrimSpace(s[start:]))
	return args, nil
}

func parseReg(s string) (Reg, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "sp", "r13":
		return SP, nil
	case "lr", "r14":
		return LR, nil
	case "pc", "r15":
		return PC, nil
	}
	s = strings.TrimSpace(s)
	if len(s) >= 2 && (s[0] == 'r' || s[0] == 'R') {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < NumRegs {
			return Reg(n), nil
		}
	}
	return 0, fmt.Errorf("arm: bad register %q", s)
}

func parseImm(s string) (uint32, error) {
	s = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(s), "#"))
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("arm: bad immediate %q", s)
	}
	return uint32(v), nil
}

// parseOp2 consumes the remaining comma-split arguments as a flexible
// second operand: "#imm" | "reg" | "reg", "lsl #n".
func parseOp2(args []string) (Operand2, error) {
	if len(args) == 0 {
		return Operand2{}, fmt.Errorf("arm: missing operand2")
	}
	if strings.HasPrefix(args[0], "#") {
		if len(args) != 1 {
			return Operand2{}, fmt.Errorf("arm: immediate operand2 takes no shift")
		}
		v, err := parseImm(args[0])
		if err != nil {
			return Operand2{}, err
		}
		return ImmOp2(v), nil
	}
	r, err := parseReg(args[0])
	if err != nil {
		return Operand2{}, err
	}
	if len(args) == 1 {
		return RegOp2(r), nil
	}
	if len(args) != 2 {
		return Operand2{}, fmt.Errorf("arm: too many operand2 parts %v", args)
	}
	k, n, err := parseShift(args[1])
	if err != nil {
		return Operand2{}, err
	}
	return ShiftedOp2(r, k, n), nil
}

func parseShift(s string) (ShiftKind, uint8, error) {
	fields := strings.Fields(s)
	if len(fields) != 2 {
		return 0, 0, fmt.Errorf("arm: bad shift %q", s)
	}
	var k ShiftKind
	switch strings.ToLower(fields[0]) {
	case "lsl":
		k = LSL
	case "lsr":
		k = LSR
	case "asr":
		k = ASR
	case "ror":
		k = ROR
	default:
		return 0, 0, fmt.Errorf("arm: bad shift kind %q", fields[0])
	}
	v, err := parseImm(fields[1])
	if err != nil || v > 31 {
		return 0, 0, fmt.Errorf("arm: bad shift amount %q", fields[1])
	}
	return k, uint8(v), nil
}

func parseMem(s string) (Mem, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return Mem{}, fmt.Errorf("arm: bad memory operand %q", s)
	}
	inner := s[1 : len(s)-1]
	parts, err := splitArgs(inner)
	if err != nil {
		return Mem{}, err
	}
	var m Mem
	if m.Base, err = parseReg(parts[0]); err != nil {
		return Mem{}, err
	}
	if len(parts) == 1 {
		return m, nil
	}
	second := strings.TrimSpace(parts[1])
	if strings.HasPrefix(second, "#") {
		if len(parts) != 2 {
			return Mem{}, fmt.Errorf("arm: immediate offset takes no shift in %q", s)
		}
		v, err := parseImm(second)
		if err != nil {
			return Mem{}, err
		}
		m.Imm = int32(v)
		return m, nil
	}
	if strings.HasPrefix(second, "-") {
		m.NegIndex = true
		second = second[1:]
	}
	m.HasIndex = true
	if m.Index, err = parseReg(second); err != nil {
		return Mem{}, err
	}
	if len(parts) == 3 {
		k, n, err := parseShift(parts[2])
		if err != nil {
			return Mem{}, err
		}
		m.Shift = Shift{Kind: k, Amount: n}
	} else if len(parts) > 3 {
		return Mem{}, fmt.Errorf("arm: bad memory operand %q", s)
	}
	return m, nil
}

func parseRegList(s string) (uint16, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "{") || !strings.HasSuffix(s, "}") {
		return 0, fmt.Errorf("arm: bad register list %q", s)
	}
	var list uint16
	for _, part := range strings.Split(s[1:len(s)-1], ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if dash := strings.Index(part, "-"); dash >= 0 {
			lo, err := parseReg(part[:dash])
			if err != nil {
				return 0, err
			}
			hi, err := parseReg(part[dash+1:])
			if err != nil {
				return 0, err
			}
			if hi < lo {
				return 0, fmt.Errorf("arm: bad register range %q", part)
			}
			for r := lo; r <= hi; r++ {
				list |= 1 << r
			}
			continue
		}
		r, err := parseReg(part)
		if err != nil {
			return 0, err
		}
		list |= 1 << r
	}
	if list == 0 {
		return 0, fmt.Errorf("arm: empty register list %q", s)
	}
	return list, nil
}
