package arm

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParsePrintRoundTrip(t *testing.T) {
	cases := []string{
		"add r1, r1, r0",
		"sub r1, r1, #1",
		"adds r0, r0, #1",
		"subs r2, r1, #14",
		"and r0, r0, #255",
		"orr r1, r1, #117440512",
		"eor r3, r4, r5",
		"bic r3, r4, r5",
		"rsb r0, r1, #0",
		"adc r0, r0, r1",
		"sbc r0, r0, r1",
		"mov r1, #983040",
		"mov r0, r1",
		"mvn r0, r1",
		"mov r2, r3, lsl #4",
		"add r0, r1, r0, lsl #2",
		"mul r0, r1, r2",
		"mla r0, r1, r2, r3",
		"cmp r2, r3",
		"cmn r2, #4",
		"tst r2, #1",
		"teq r2, r3",
		"ldr r0, [r0, #-4]",
		"ldr r1, [r5]",
		"ldr r4, [r1]",
		"ldr r0, [r1, r2, lsl #2]",
		"ldr r0, [r1, -r2]",
		"ldrb r0, [r1, #3]",
		"str r1, [r6]",
		"strb r1, [r6, #1]",
		"b 12",
		"beq 3",
		"bne 7",
		"bhi 0",
		"bl 100",
		"bx lr",
		"push {r4, r5, lr}",
		"pop {r4, r5, pc}",
		"addne r0, r0, #1",
		"movle r1, #0",
	}
	for _, src := range cases {
		in, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		printed := in.String()
		in2, err := Parse(printed)
		if err != nil {
			t.Errorf("reparse of %q (from %q): %v", printed, src, err)
			continue
		}
		if in != in2 {
			t.Errorf("round trip %q -> %q: %+v vs %+v", src, printed, in, in2)
		}
	}
}

func TestParseRegisterRange(t *testing.T) {
	in := MustParse("push {r4-r7, lr}")
	want := uint16(1<<R4 | 1<<R5 | 1<<R6 | 1<<R7 | 1<<LR)
	if in.RegList != want {
		t.Errorf("RegList = %#x, want %#x", in.RegList, want)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"", "xyzzy r0", "add r0", "mov r99, #1", "ldr r0, [r1", "push {}",
		"add r0, r1, #2, lsl #2", "b x",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestInterpArithmetic(t *testing.T) {
	s := NewState()
	s.R[0] = 5
	s.R[1] = 7
	code := MustParseSeq("add r2, r0, r1; sub r3, r2, #1; mul r4, r2, r3")
	pc := 0
	for pc < len(code) {
		pc = s.Step(code[pc], pc)
	}
	if s.R[2] != 12 || s.R[3] != 11 || s.R[4] != 132 {
		t.Errorf("r2=%d r3=%d r4=%d", s.R[2], s.R[3], s.R[4])
	}
}

func TestInterpPaperLeaExample(t *testing.T) {
	// The §1 motivating pair: add r1,r1,r0; sub r1,r1,#1.
	s := NewState()
	s.R[0] = 100
	s.R[1] = 23
	for pc, in := range MustParseSeq("add r1, r1, r0; sub r1, r1, #1") {
		s.Step(in, pc)
	}
	if s.R[1] != 122 {
		t.Errorf("r1 = %d, want 122", s.R[1])
	}
}

func TestInterpFlagsSub(t *testing.T) {
	s := NewState()
	s.R[1] = 5
	s.R[2] = 5
	s.Step(MustParse("cmp r1, r2"), 0)
	if !s.Z || s.N || !s.C || s.V {
		t.Errorf("cmp equal: N=%v Z=%v C=%v V=%v", s.N, s.Z, s.C, s.V)
	}
	s.R[2] = 6
	s.Step(MustParse("cmp r1, r2"), 0)
	if s.Z || !s.N || s.C {
		t.Errorf("cmp less: N=%v Z=%v C=%v", s.N, s.Z, s.C)
	}
	// Signed overflow: INT_MIN - 1.
	s.R[1] = 0x80000000
	s.R[2] = 1
	s.Step(MustParse("cmp r1, r2"), 0)
	if !s.V {
		t.Error("cmp INT_MIN,1 should set V")
	}
}

func TestInterpFlagsAdd(t *testing.T) {
	s := NewState()
	s.R[0] = 0xffffffff
	s.Step(MustParse("adds r0, r0, #1"), 0)
	if s.R[0] != 0 || !s.Z || !s.C || s.V || s.N {
		t.Errorf("adds wrap: r0=%#x N=%v Z=%v C=%v V=%v", s.R[0], s.N, s.Z, s.C, s.V)
	}
	s.R[1] = 0x7fffffff
	s.Step(MustParse("adds r1, r1, #1"), 0)
	if !s.V || !s.N || s.C {
		t.Errorf("adds signed overflow: N=%v C=%v V=%v", s.N, s.C, s.V)
	}
}

func TestInterpCarryChain(t *testing.T) {
	// 64-bit add via adds/adc: (2^32-1) + 1 = 2^32.
	s := NewState()
	s.R[0] = 0xffffffff // low a
	s.R[1] = 0          // high a
	s.R[2] = 1          // low b
	s.R[3] = 0          // high b
	for pc, in := range MustParseSeq("adds r0, r0, r2; adc r1, r1, r3") {
		s.Step(in, pc)
	}
	if s.R[0] != 0 || s.R[1] != 1 {
		t.Errorf("64-bit add: lo=%#x hi=%#x", s.R[0], s.R[1])
	}
}

func TestInterpShifter(t *testing.T) {
	s := NewState()
	s.R[1] = 3
	s.R[0] = 0x10
	s.Step(MustParse("add r0, r0, r1, lsl #2"), 0)
	if s.R[0] != 0x1c {
		t.Errorf("r0 = %#x, want 0x1c", s.R[0])
	}
	s.R[2] = 0x80000000
	s.Step(MustParse("mov r3, r2, asr #31"), 0)
	if s.R[3] != 0xffffffff {
		t.Errorf("asr: r3 = %#x", s.R[3])
	}
	s.Step(MustParse("mov r3, r2, lsr #31"), 0)
	if s.R[3] != 1 {
		t.Errorf("lsr: r3 = %#x", s.R[3])
	}
	s.R[4] = 0x81
	s.Step(MustParse("mov r5, r4, ror #1"), 0)
	if s.R[5] != 0x80000040 {
		t.Errorf("ror: r5 = %#x", s.R[5])
	}
}

func TestInterpMemory(t *testing.T) {
	s := NewState()
	s.R[6] = 0x1000
	s.R[1] = 0xdeadbeef
	s.Step(MustParse("str r1, [r6]"), 0)
	if got := s.Mem.Read32(0x1000); got != 0xdeadbeef {
		t.Errorf("mem = %#x", got)
	}
	s.Step(MustParse("ldrb r2, [r6, #1]"), 0)
	if s.R[2] != 0xbe {
		t.Errorf("ldrb = %#x", s.R[2])
	}
	// Scaled index addressing with negative displacement (Figure 2a).
	s.R[0] = 2      // index
	s.R[3] = 0x1008 // base
	s.Mem.Write32(0x1008+2*4-4, 0x12345678)
	s.Step(MustParse("ldr r4, [r3, r0, lsl #2]"), 0)
	if s.R[4] != s.Mem.Read32(0x1010) {
		t.Errorf("scaled ldr = %#x", s.R[4])
	}
}

func TestInterpPredication(t *testing.T) {
	s := NewState()
	s.R[0] = 1
	s.R[1] = 2
	s.Step(MustParse("cmp r0, r1"), 0)
	s.Step(MustParse("movlt r2, #111"), 1)
	s.Step(MustParse("movge r3, #222"), 2)
	if s.R[2] != 111 {
		t.Errorf("movlt should execute: r2=%d", s.R[2])
	}
	if s.R[3] != 0 {
		t.Errorf("movge should not execute: r3=%d", s.R[3])
	}
}

func TestInterpBranchesAndCalls(t *testing.T) {
	// 0: mov r0, #0
	// 1: mov r1, #5
	// 2: cmp r0, r1
	// 3: beq 7
	// 4: add r0, r0, #1
	// 5: b 2
	// 6: (never) mov r0, #99
	// 7: bx lr
	code := MustParseSeq(`mov r0, #0; mov r1, #5; cmp r0, r1; beq 7;
		add r0, r0, #1; b 2; mov r0, #99; bx lr`)
	s := NewState()
	s.R[LR] = 0x7fffffff // out-of-range sentinel
	exit, err := s.Run(code, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if exit != 0x7fffffff {
		t.Errorf("exit pc = %d", exit)
	}
	if s.R[0] != 5 {
		t.Errorf("r0 = %d, want 5", s.R[0])
	}
}

func TestInterpPushPop(t *testing.T) {
	s := NewState()
	s.R[SP] = 0x2000
	s.R[4] = 44
	s.R[5] = 55
	s.R[LR] = 0x123
	s.Step(MustParse("push {r4, r5, lr}"), 0)
	if s.R[SP] != 0x2000-12 {
		t.Fatalf("sp = %#x", s.R[SP])
	}
	s.R[4], s.R[5] = 0, 0
	next := s.Step(MustParse("pop {r4, r5, pc}"), 1)
	if s.R[4] != 44 || s.R[5] != 55 {
		t.Errorf("pop restored r4=%d r5=%d", s.R[4], s.R[5])
	}
	if next != 0x123 {
		t.Errorf("pop pc -> %d, want 0x123", next)
	}
	if s.R[SP] != 0x2000 {
		t.Errorf("sp = %#x", s.R[SP])
	}
}

func TestInterpBLSetsLR(t *testing.T) {
	s := NewState()
	next := s.Step(MustParse("bl 42"), 7)
	if next != 42 || s.R[LR] != 8 {
		t.Errorf("bl: next=%d lr=%d", next, s.R[LR])
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	srcs := []string{
		"add r1, r1, r0", "sub r1, r1, #1", "subs r2, r1, #14",
		"and r0, r0, #255", "mov r2, r3, lsl #4", "mvn r0, r1",
		"cmp r2, r3", "tst r2, #1", "mul r0, r1, r2", "mla r0, r1, r2, r3",
		"ldr r0, [r0, #-4]", "ldr r1, [r5]", "str r1, [r6]",
		"ldrb r0, [r1, #3]", "strb r1, [r6, #1]",
		"ldr r0, [r1, r2, lsl #2]", "ldr r0, [r1, -r2]",
		"b 12", "beq 3", "bl 100", "bx lr",
		"push {r4, r5, lr}", "pop {r4, r5, pc}",
		"addne r0, r0, #1", "adc r0, r0, r1", "rsb r0, r1, #0",
	}
	for _, src := range srcs {
		in := MustParse(src)
		w, err := Encode(in)
		if err != nil {
			t.Errorf("Encode(%q): %v", src, err)
			continue
		}
		got, err := Decode(w)
		if err != nil {
			t.Errorf("Decode(%q = %#08x): %v", src, w, err)
			continue
		}
		// Normalize fields that legitimately do not round-trip:
		// compares zero Rd on decode, and MLA stores Ra in bits 12-15.
		want := in
		if want.Op.IsCompare() {
			want.Rd = 0
			want.SetFlags = true
		}
		if got != want {
			t.Errorf("%q: decode mismatch\n got %+v\nwant %+v", src, got, want)
		}
	}
}

func TestEncodeImmRule(t *testing.T) {
	ok := []uint32{0, 1, 0xff, 0x100, 0xff00, 0xff000000, 983040, 117440512, 0x3fc}
	for _, v := range ok {
		if !ImmEncodable(v) {
			t.Errorf("%#x should be encodable", v)
		}
	}
	bad := []uint32{0x101, 0x70f00000, 0xffffffff - 2, 0x12345678}
	for _, v := range bad {
		if ImmEncodable(v) {
			t.Errorf("%#x should not be encodable", v)
		}
	}
}

func TestEncodeRejectsBadImmediate(t *testing.T) {
	in := Instr{Op: MOV, Cond: AL, Rd: R1, Op2: ImmOp2(0x70f00000)}
	if _, err := Encode(in); err == nil {
		t.Error("expected encode failure for non-rotatable immediate")
	}
}

func TestLoadImm(t *testing.T) {
	// Figure 4(b): 0x70f00000 needs mov+orr on ARM.
	check := func(v uint32) {
		t.Helper()
		seq := LoadImm(R1, v)
		s := NewState()
		for pc, in := range seq {
			if _, err := Encode(in); err != nil {
				t.Errorf("LoadImm(%#x) produced unencodable %s: %v", v, in, err)
			}
			s.Step(in, pc)
		}
		if s.R[1] != v {
			t.Errorf("LoadImm(%#x) computed %#x", v, s.R[1])
		}
	}
	for _, v := range []uint32{0, 1, 255, 0x70f00000, 0x12345678, 0xffffffff, 983040 | 117440512} {
		check(v)
	}
	if got := len(LoadImm(R1, 0x70f00000)); got != 2 {
		t.Errorf("LoadImm(0x70f00000) uses %d instructions, want 2", got)
	}
}

func TestQuickEncodeImmMatchesDecode(t *testing.T) {
	f := func(v uint32) bool {
		field, ok := EncodeImm(v)
		if !ok {
			return true
		}
		rot := uint32(field>>8) * 2
		b := uint32(field & 0xff)
		return b>>(2*0) <= 0xff && (b>>rot|b<<(32-rot)) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestSymMatchesInterp is the central soundness property of the guest
// model: symbolically executing a random straight-line sequence and then
// evaluating the result under a random concrete environment must agree
// with the concrete interpreter.
func TestSymMatchesInterp(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for iter := 0; iter < 400; iter++ {
		seq := randomStraightLine(r, 1+r.Intn(5))
		sym := NewSymState("g", nil)
		if err := sym.SymExec(seq); err != nil {
			t.Fatalf("iter %d: SymExec(%s): %v", iter, Seq(seq), err)
		}

		st := NewState()
		env := map[string]uint64{}
		for i := 0; i < NumRegs; i++ {
			v := uint32(r.Uint64())
			st.R[i] = v
			env[sigName("g", i)] = uint64(v)
		}
		st.N, st.Z, st.C, st.V = r.Intn(2) == 1, r.Intn(2) == 1, r.Intn(2) == 1, r.Intn(2) == 1
		env["g_n"] = b2u(st.N)
		env["g_z"] = b2u(st.Z)
		env["g_c"] = b2u(st.C)
		env["g_v"] = b2u(st.V)

		for pc, in := range seq {
			st.Step(in, pc)
		}
		for i := 0; i < NumRegs; i++ {
			got := uint32(sym.R[i].Eval(env))
			if got != st.R[i] {
				t.Fatalf("iter %d: r%d symbolic=%#x concrete=%#x\nseq: %s\nexpr: %s",
					iter, i, got, st.R[i], Seq(seq), sym.R[i])
			}
		}
		flagChecks := []struct {
			name string
			sym  uint64
			conc bool
		}{
			{"N", sym.N.Eval(env), st.N},
			{"Z", sym.Z.Eval(env), st.Z},
			{"C", sym.C.Eval(env), st.C},
			{"V", sym.V.Eval(env), st.V},
		}
		for _, f := range flagChecks {
			if (f.sym == 1) != f.conc {
				t.Fatalf("iter %d: flag %s symbolic=%d concrete=%v\nseq: %s",
					iter, f.name, f.sym, f.conc, Seq(seq))
			}
		}
	}
}

func sigName(prefix string, i int) string {
	return fmt.Sprintf("%s_r%d", prefix, i)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// randomStraightLine builds a random register-only straight-line sequence
// (no memory, no branches) for the sym-vs-interp property.
func randomStraightLine(r *rand.Rand, n int) []Instr {
	regs := []Reg{R0, R1, R2, R3, R4, R5}
	randReg := func() Reg { return regs[r.Intn(len(regs))] }
	var out []Instr
	for i := 0; i < n; i++ {
		op := []Op{ADD, SUB, RSB, ADC, SBC, AND, ORR, EOR, BIC, MOV, MVN, MUL, MLA, CMP, CMN, TST, TEQ}[r.Intn(17)]
		in := Instr{Op: op, Cond: AL, Rd: randReg(), Rn: randReg()}
		switch op {
		case MUL:
			in.Op2 = RegOp2(randReg())
		case MLA:
			in.Op2 = RegOp2(randReg())
			in.Ra = randReg()
		default:
			switch r.Intn(3) {
			case 0:
				in.Op2 = ImmOp2(uint64ToImm(r))
			case 1:
				in.Op2 = RegOp2(randReg())
			default:
				k := ShiftKind(r.Intn(4))
				in.Op2 = ShiftedOp2(randReg(), k, uint8(1+r.Intn(31)))
			}
			in.SetFlags = r.Intn(2) == 1
		}
		if op.IsCompare() {
			in.SetFlags = true
		}
		out = append(out, in)
	}
	return out
}

func uint64ToImm(r *rand.Rand) uint32 {
	// Encodable immediates only: an 8-bit value, occasionally rotated.
	v := uint32(r.Intn(256))
	rot := uint32(r.Intn(16)) * 2
	return v>>rot | v<<(32-rot)
}

// TestFuzzPrintParseRoundTrip: random well-formed instructions across the
// whole operand space must survive String→Parse.
func TestFuzzPrintParseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	randReg := func() Reg { return Reg(r.Intn(16)) }
	randCond := func() Cond { return Cond(r.Intn(15)) }
	randShift := func() Shift {
		if r.Intn(2) == 0 {
			return Shift{}
		}
		return Shift{Kind: ShiftKind(r.Intn(4)), Amount: uint8(1 + r.Intn(31))}
	}
	randOp2 := func() Operand2 {
		switch r.Intn(3) {
		case 0:
			return ImmOp2(uint32(r.Intn(1 << 16)))
		case 1:
			return RegOp2(randReg())
		default:
			s := randShift()
			if s.None() {
				return RegOp2(randReg())
			}
			return Operand2{Reg: randReg(), Shift: s}
		}
	}
	for i := 0; i < 3000; i++ {
		var in Instr
		switch r.Intn(10) {
		case 0:
			in = Instr{Op: Op(r.Intn(16)), Cond: randCond(), SetFlags: r.Intn(2) == 0,
				Rd: randReg(), Rn: randReg(), Op2: randOp2()}
			if in.Op.IsCompare() {
				in.Rd = 0
				in.SetFlags = true
			}
			if in.Op == MOV || in.Op == MVN {
				in.Rn = 0
			}
		case 1:
			in = Instr{Op: MUL, Cond: randCond(), Rd: randReg(), Rn: randReg(), Op2: RegOp2(randReg())}
		case 2:
			in = Instr{Op: MLA, Cond: randCond(), Rd: randReg(), Rn: randReg(),
				Op2: RegOp2(randReg()), Ra: randReg()}
		case 3, 4:
			m := Mem{Base: randReg()}
			if r.Intn(2) == 0 {
				m.Imm = int32(r.Intn(1<<12)) - 2048
			} else {
				m.HasIndex = true
				m.Index = randReg()
				m.NegIndex = r.Intn(2) == 0
				m.Shift = randShift()
			}
			in = Instr{Op: []Op{LDR, LDRB, STR, STRB}[r.Intn(4)], Cond: randCond(),
				Rd: randReg(), Mem: m}
		case 5:
			in = Instr{Op: B, Cond: randCond(), Target: int32(r.Intn(1 << 20))}
		case 6:
			in = Instr{Op: BL, Cond: AL, Target: int32(r.Intn(1 << 20))}
		case 7:
			in = Instr{Op: BX, Cond: randCond(), Rn: randReg()}
		case 8:
			in = Instr{Op: PUSH, Cond: AL, RegList: uint16(1 + r.Intn(1<<16-1))}
		default:
			in = Instr{Op: POP, Cond: AL, RegList: uint16(1 + r.Intn(1<<16-1))}
		}
		printed := in.String()
		back, err := Parse(printed)
		if err != nil {
			t.Fatalf("iter %d: Parse(%q): %v (from %+v)", i, printed, err, in)
		}
		if back != in {
			t.Fatalf("iter %d: %q round-tripped to %+v, want %+v", i, printed, back, in)
		}
	}
}

// TestQuickCmpConditionLaws: after cmp r0, r1 every ARM condition must
// agree with the corresponding Go comparison — mirrored by the x86
// package's law test; together they pin down both ends of the condition
// mapping the DBT and the learned branch rules translate between.
func TestQuickCmpConditionLaws(t *testing.T) {
	cmp := MustParse("cmp r0, r1")
	f := func(a, b uint32, pick uint8) bool {
		switch pick % 4 {
		case 1:
			b = a
		case 2:
			b = a + 1
		case 3:
			a, b = uint32(int32(a)>>31), uint32(int32(b)>>31)
		}
		s := NewState()
		s.R[R0], s.R[R1] = a, b
		s.Step(cmp, 0)
		sa, sb := int32(a), int32(b)
		d := a - b
		laws := []struct {
			cond Cond
			want bool
		}{
			{EQ, a == b}, {NE, a != b},
			{CS, a >= b}, {CC, a < b},
			{HI, a > b}, {LS, a <= b},
			{GE, sa >= sb}, {LT, sa < sb}, {GT, sa > sb}, {LE, sa <= sb},
			{MI, int32(d) < 0}, {PL, int32(d) >= 0},
			{VS, (sa < sb) != (int32(d) < 0)}, {VC, (sa < sb) == (int32(d) < 0)},
			{AL, true},
		}
		for _, law := range laws {
			if s.CondHolds(law.cond) != law.want {
				t.Logf("cmp %#x,%#x: %s = %v, want %v", a, b, law.cond, !law.want, law.want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Error(err)
	}
}

// TestQuickAddsSubsCarryDuality: ARM defines subtraction carry as NOT
// borrow, so subs a,b and adds a,~b+... obey: C(subs a,b) == C(adds a, ~b)
// with +1 folded in — concretely, for all a,b: a - b sets C iff a >= b,
// and a + b sets C iff the 33-bit sum overflows.
func TestQuickAddsSubsCarryDuality(t *testing.T) {
	subs := MustParse("subs r2, r0, r1")
	adds := MustParse("adds r2, r0, r1")
	f := func(a, b uint32) bool {
		s := NewState()
		s.R[R0], s.R[R1] = a, b
		s.Step(subs, 0)
		if s.C != (a >= b) {
			return false
		}
		s2 := NewState()
		s2.R[R0], s2.R[R1] = a, b
		s2.Step(adds, 0)
		return s2.C == (uint64(a)+uint64(b) > 0xffffffff)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Error(err)
	}
}

// TestUsesDefsFlagsConsistency mirrors the x86 package's property: the
// static def/use/flag summaries must agree with interpreter behaviour —
// perturbing a non-used register cannot change an instruction's effect,
// non-defined registers survive execution, and flag-transparent
// instructions leave NZCV alone.
func TestUsesDefsFlagsConsistency(t *testing.T) {
	samples := []string{
		"mov r0, #42", "mov r0, r1", "mvn r0, r1", "mov r0, r1, lsl #3",
		"add r0, r1, r2", "add r0, r1, #4", "sub r0, r1, r2, lsr #1",
		"rsb r0, r1, #0", "adc r0, r1, r2", "sbc r0, r1, r2", "rsc r0, r1, r2",
		"and r0, r1, r2", "orr r0, r1, #0xf0", "eor r0, r1, r2", "bic r0, r1, r2",
		"cmp r1, r2", "cmn r1, #3", "tst r1, r2", "teq r1, r2",
		"adds r0, r1, r2", "subs r0, r1, #1", "ands r0, r1, r2",
		"mul r0, r1, r2", "mla r0, r1, r2, r3",
		"ldr r0, [r1]", "ldr r0, [r1, #8]", "ldr r0, [r1, r2]",
		"ldr r0, [r1, r2, lsl #2]", "ldrb r0, [r1, #3]",
		"str r0, [r1, #4]", "strb r0, [r1, r2]",
		"push {r0, r1, r4}", "pop {r4, r5}",
		"bx lr", "moveq r0, #1", "addne r0, r1, r2",
	}
	r := rand.New(rand.NewSource(321))
	const dataBase = 0x3000
	for _, src := range samples {
		in := MustParse(src)
		for trial := 0; trial < 30; trial++ {
			s1 := NewState()
			for reg := R0; reg <= R12; reg++ {
				s1.R[reg] = dataBase + uint32(r.Intn(64))*4
			}
			s1.R[SP] = 0x8000
			s1.R[LR] = 0x9000
			for i := uint32(0); i < 0x400; i += 4 {
				s1.Mem.Write32(dataBase+i, r.Uint32())
			}
			s1.N, s1.Z, s1.C, s1.V = r.Intn(2) == 1, r.Intn(2) == 1, r.Intn(2) == 1, r.Intn(2) == 1
			pre := s1.Clone()

			used := map[Reg]bool{SP: true, LR: true, PC: true}
			for _, u := range in.Uses() {
				used[u] = true
			}
			for _, d := range in.Defs() {
				used[d] = true
			}
			perturb := Reg(0xff)
			for reg := R0; reg <= R12; reg++ {
				if !used[reg] {
					perturb = reg
					break
				}
			}
			s2 := s1.Clone()
			if perturb != Reg(0xff) {
				s2.R[perturb] += 0x40000000
			}

			s1.Step(in, 0)
			s2.Step(in, 0)

			for reg := R0; reg <= R12; reg++ {
				if reg == perturb {
					continue
				}
				if s1.R[reg] != s2.R[reg] {
					t.Fatalf("%s: register r%d depends on non-used r%d", src, reg, perturb)
				}
			}
			if s1.N != s2.N || s1.Z != s2.Z || s1.C != s2.C || s1.V != s2.V {
				t.Fatalf("%s: flags depend on non-used r%d", src, perturb)
			}

			defs := map[Reg]bool{}
			for _, d := range in.Defs() {
				defs[d] = true
			}
			for reg := R0; reg <= R12; reg++ {
				if !defs[reg] && s1.R[reg] != pre.R[reg] {
					t.Fatalf("%s: register r%d changed but is not in Defs()=%v", src, reg, in.Defs())
				}
			}

			if !in.WritesFlags() {
				if s1.N != pre.N || s1.Z != pre.Z || s1.C != pre.C || s1.V != pre.V {
					t.Fatalf("%s: WritesFlags()=false but flags changed", src)
				}
			}
		}
	}
	if !MustParse("bne 3").IsCondBranch() || MustParse("b 3").IsCondBranch() {
		t.Error("IsCondBranch misclassifies")
	}
	if got := Seq(MustParseSeq("mov r0, #1; bx lr")); got != "mov r0, #1; bx lr" {
		t.Errorf("Seq = %q", got)
	}
}
