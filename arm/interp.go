package arm

import (
	"fmt"

	"dbtrules/mach"
)

// State is a concrete ARM machine state. PC is kept outside the register
// array by the program-counter convention used throughout this repo:
// control flow operates on instruction indices, not byte addresses (data
// memory is byte-addressed as usual). LR therefore holds an instruction
// index when set by BL.
type State struct {
	R          [NumRegs]uint32
	N, Z, C, V bool
	Mem        *mach.Memory
	// Steps counts executed instructions (including predicated-false).
	Steps uint64
}

// NewState returns a state with fresh memory.
func NewState() *State {
	return &State{Mem: mach.NewMemory()}
}

// CondHolds evaluates a condition code against the current flags.
func (s *State) CondHolds(c Cond) bool {
	switch c {
	case EQ:
		return s.Z
	case NE:
		return !s.Z
	case CS:
		return s.C
	case CC:
		return !s.C
	case MI:
		return s.N
	case PL:
		return !s.N
	case VS:
		return s.V
	case VC:
		return !s.V
	case HI:
		return s.C && !s.Z
	case LS:
		return !s.C || s.Z
	case GE:
		return s.N == s.V
	case LT:
		return s.N != s.V
	case GT:
		return !s.Z && s.N == s.V
	case LE:
		return s.Z || s.N != s.V
	default:
		return true
	}
}

// shifterOperand computes the value of a flexible second operand together
// with the barrel shifter's carry-out. valid is false when the shifter does
// not produce a carry (no shift, or immediate without rotation), in which
// case logical S-flag instructions leave C unchanged.
func (s *State) shifterOperand(o Operand2) (val uint32, carry, valid bool) {
	if o.IsImm {
		return o.Imm, false, false
	}
	v := s.R[o.Reg]
	n := uint32(o.Shift.Amount)
	if o.Shift.None() {
		return v, false, false
	}
	switch o.Shift.Kind {
	case LSL:
		return v << n, v>>(32-n)&1 == 1, true
	case LSR:
		return v >> n, v>>(n-1)&1 == 1, true
	case ASR:
		return uint32(int32(v) >> n), v>>(n-1)&1 == 1, true
	default: // ROR
		return v>>n | v<<(32-n), v>>(n-1)&1 == 1, true
	}
}

// MemAddr computes the effective address of a memory operand.
func (s *State) MemAddr(m Mem) uint32 {
	addr := s.R[m.Base]
	if m.HasIndex {
		idx := s.R[m.Index]
		switch m.Shift.Kind {
		case LSL:
			idx <<= m.Shift.Amount
		case LSR:
			idx >>= m.Shift.Amount
		case ASR:
			idx = uint32(int32(idx) >> m.Shift.Amount)
		case ROR:
			n := uint32(m.Shift.Amount)
			idx = idx>>n | idx<<(32-n)
		}
		if m.NegIndex {
			addr -= idx
		} else {
			addr += idx
		}
	}
	return addr + uint32(m.Imm)
}

func (s *State) setNZ(v uint32) {
	s.N = v>>31 == 1
	s.Z = v == 0
}

// addWithCarry computes a+b+cin, returning result, carry-out, and overflow.
func addWithCarry(a, b uint32, cin bool) (res uint32, c, v bool) {
	var ci uint64
	if cin {
		ci = 1
	}
	full := uint64(a) + uint64(b) + ci
	res = uint32(full)
	c = full>>32 == 1
	v = (a^res)&(b^res)>>31 == 1
	return res, c, v
}

// Step executes one instruction at instruction index pc and returns the
// next instruction index. Unknown operations panic: the interpreter is the
// ground truth of the reproduction and must not guess.
func (s *State) Step(in Instr, pc int) int {
	s.Steps++
	if !s.CondHolds(in.Cond) {
		return pc + 1
	}
	next := pc + 1
	switch in.Op {
	case AND, EOR, ORR, BIC, MOV, MVN, TST, TEQ:
		val, shC, shValid := s.shifterOperand(in.Op2)
		var res uint32
		switch in.Op {
		case AND, TST:
			res = s.R[in.Rn] & val
		case EOR, TEQ:
			res = s.R[in.Rn] ^ val
		case ORR:
			res = s.R[in.Rn] | val
		case BIC:
			res = s.R[in.Rn] &^ val
		case MOV:
			res = val
		case MVN:
			res = ^val
		}
		if in.SetFlags {
			s.setNZ(res)
			if shValid {
				s.C = shC
			}
		}
		if !in.Op.IsCompare() {
			s.R[in.Rd] = res
		}
	case ADD, ADC, SUB, SBC, RSB, RSC, CMP, CMN:
		val, _, _ := s.shifterOperand(in.Op2)
		a, b := s.R[in.Rn], val
		cin := false
		switch in.Op {
		case ADD, CMN:
		case ADC:
			cin = s.C
		case SUB, CMP:
			b = ^b
			cin = true
		case SBC:
			b = ^b
			cin = s.C
		case RSB:
			a, b = val, ^s.R[in.Rn]
			cin = true
		case RSC:
			a, b = val, ^s.R[in.Rn]
			cin = s.C
		}
		res, c, v := addWithCarry(a, b, cin)
		if in.SetFlags {
			s.setNZ(res)
			s.C = c
			s.V = v
		}
		if !in.Op.IsCompare() {
			s.R[in.Rd] = res
		}
	case MUL:
		res := s.R[in.Rn] * s.R[in.Op2.Reg]
		s.R[in.Rd] = res
		if in.SetFlags {
			s.setNZ(res)
		}
	case MLA:
		res := s.R[in.Rn]*s.R[in.Op2.Reg] + s.R[in.Ra]
		s.R[in.Rd] = res
		if in.SetFlags {
			s.setNZ(res)
		}
	case LDR:
		s.R[in.Rd] = s.Mem.Read32(s.MemAddr(in.Mem))
	case LDRB:
		s.R[in.Rd] = uint32(s.Mem.Load8(s.MemAddr(in.Mem)))
	case STR:
		s.Mem.Write32(s.MemAddr(in.Mem), s.R[in.Rd])
	case STRB:
		s.Mem.Store8(s.MemAddr(in.Mem), byte(s.R[in.Rd]))
	case B:
		next = int(in.Target)
	case BL:
		s.R[LR] = uint32(pc + 1)
		next = int(in.Target)
	case BX:
		next = int(s.R[in.Rn])
	case PUSH:
		sp := s.R[SP]
		for r := Reg(NumRegs) - 1; ; r-- {
			if in.RegList&(1<<r) != 0 {
				sp -= 4
				s.Mem.Write32(sp, s.R[r])
			}
			if r == 0 {
				break
			}
		}
		s.R[SP] = sp
	case POP:
		sp := s.R[SP]
		for r := Reg(0); r < NumRegs; r++ {
			if in.RegList&(1<<r) != 0 {
				s.R[r] = s.Mem.Read32(sp)
				sp += 4
			}
		}
		s.R[SP] = sp
		if in.RegList&(1<<PC) != 0 {
			next = int(s.R[PC])
		}
	default:
		panic(fmt.Sprintf("arm: Step: unhandled op %s", in.Op))
	}
	return next
}

// Run executes instructions starting at pc until the pc leaves [0, len);
// it returns the exit pc. A negative exit pc is the conventional "program
// finished" sentinel used by the test harnesses (bx lr with lr = ^0).
func (s *State) Run(code []Instr, pc int, maxSteps uint64) (int, error) {
	start := s.Steps
	for pc >= 0 && pc < len(code) {
		if s.Steps-start >= maxSteps {
			return pc, fmt.Errorf("arm: step budget (%d) exhausted at pc %d", maxSteps, pc)
		}
		pc = s.Step(code[pc], pc)
	}
	return pc, nil
}

// Clone returns a deep copy of the state.
func (s *State) Clone() *State {
	c := *s
	c.Mem = s.Mem.Clone()
	return &c
}
