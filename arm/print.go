package arm

import (
	"fmt"
	"strings"
)

// String renders the instruction in UAL-style assembly, e.g.
// "add r1, r1, r0", "ldr r0, [r0, #-4]", "subs r2, r1, #14", "bne 12".
func (i Instr) String() string {
	var b strings.Builder
	b.WriteString(i.Op.String())
	if i.SetFlags && !i.Op.IsCompare() && !i.Op.IsBranch() {
		b.WriteString("s")
	}
	b.WriteString(i.Cond.String())
	b.WriteByte(' ')
	switch i.Op {
	case MOV, MVN:
		fmt.Fprintf(&b, "%s, %s", i.Rd, i.Op2)
	case TST, TEQ, CMP, CMN:
		fmt.Fprintf(&b, "%s, %s", i.Rn, i.Op2)
	case MUL:
		fmt.Fprintf(&b, "%s, %s, %s", i.Rd, i.Rn, i.Op2.Reg)
	case MLA:
		fmt.Fprintf(&b, "%s, %s, %s, %s", i.Rd, i.Rn, i.Op2.Reg, i.Ra)
	case LDR, LDRB, STR, STRB:
		fmt.Fprintf(&b, "%s, %s", i.Rd, i.Mem)
	case B, BL:
		fmt.Fprintf(&b, "%d", i.Target)
	case BX:
		b.WriteString(i.Rn.String())
	case PUSH, POP:
		b.WriteString(regListString(i.RegList))
	default:
		fmt.Fprintf(&b, "%s, %s, %s", i.Rd, i.Rn, i.Op2)
	}
	return b.String()
}

// String renders an Operand2 ("#imm", "r3", or "r3, lsl #2").
func (o Operand2) String() string {
	if o.IsImm {
		return fmt.Sprintf("#%d", int32(o.Imm))
	}
	if o.Shift.None() {
		return o.Reg.String()
	}
	return fmt.Sprintf("%s, %s #%d", o.Reg, o.Shift.Kind, o.Shift.Amount)
}

// String renders a memory operand ("[r0, #-4]", "[r1, r2, lsl #2]").
func (m Mem) String() string {
	var b strings.Builder
	b.WriteByte('[')
	b.WriteString(m.Base.String())
	switch {
	case m.HasIndex:
		b.WriteString(", ")
		if m.NegIndex {
			b.WriteByte('-')
		}
		b.WriteString(m.Index.String())
		if !m.Shift.None() {
			fmt.Fprintf(&b, ", %s #%d", m.Shift.Kind, m.Shift.Amount)
		}
	case m.Imm != 0:
		fmt.Fprintf(&b, ", #%d", m.Imm)
	}
	b.WriteByte(']')
	return b.String()
}

func regListString(list uint16) string {
	var parts []string
	for r := Reg(0); r < NumRegs; r++ {
		if list&(1<<r) != 0 {
			parts = append(parts, r.String())
		}
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Seq formats a slice of instructions one per line (for diagnostics and
// rule serialization).
func Seq(ins []Instr) string {
	var b strings.Builder
	for i, in := range ins {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(in.String())
	}
	return b.String()
}
