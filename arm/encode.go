package arm

import "fmt"

// Encode produces the 32-bit A32 machine word for an instruction. The
// layout follows the real architecture for the modeled subset:
//
//	data-processing: cond | 00 I opc S | Rn Rd | shifter_operand
//	multiply:        cond | 0000 00AS  | Rd Ra Rs 1001 Rm
//	load/store:      cond | 01 I P U B W L | Rn Rd | offset
//	branch:          cond | 101 L | imm24 (absolute instruction index here)
//	bx:              cond | 0001 0010 1111 1111 1111 0001 | Rm
//	push/pop:        STMDB sp! / LDMIA sp! with a register list
//
// One deliberate modeling difference: branch offsets store the absolute
// target instruction index rather than a pc-relative word offset, because
// the whole repository addresses code by instruction index. Immediates obey
// the genuine rotated-8-bit constraint; Encode fails on values that a real
// assembler would reject, which is exactly the §5 "host ISA specific
// constraints" behaviour the code generators must work around.
func Encode(in Instr) (uint32, error) {
	cond := uint32(in.Cond) << 28
	switch {
	case in.Op.IsDataProcessing():
		var s uint32
		if in.SetFlags || in.Op.IsCompare() {
			s = 1 << 20
		}
		w := cond | uint32(in.Op)<<21 | s | uint32(in.Rn)<<16 | uint32(in.Rd)<<12
		sh, err := encodeOp2(in.Op2)
		if err != nil {
			return 0, err
		}
		return w | sh, nil
	case in.Op == MUL || in.Op == MLA:
		var a, s uint32
		if in.Op == MLA {
			a = 1 << 21
		}
		if in.SetFlags {
			s = 1 << 20
		}
		return cond | a | s | uint32(in.Rd)<<16 | uint32(in.Ra)<<12 |
			uint32(in.Op2.Reg)<<8 | 0x90 | uint32(in.Rn), nil
	case in.Op.IsMemory():
		w := cond | 1<<26 | 1<<24 // single transfer, P=1 offset addressing
		if in.Op == LDR || in.Op == LDRB {
			w |= 1 << 20
		}
		if in.Op == LDRB || in.Op == STRB {
			w |= 1 << 22
		}
		w |= uint32(in.Mem.Base)<<16 | uint32(in.Rd)<<12
		if in.Mem.HasIndex {
			if in.Mem.Imm != 0 {
				return 0, fmt.Errorf("arm: encode: mixed index+immediate offset in %s", in)
			}
			w |= 1 << 25
			if !in.Mem.NegIndex {
				w |= 1 << 23
			}
			w |= uint32(in.Mem.Shift.Amount)<<7 | uint32(in.Mem.Shift.Kind)<<5 | uint32(in.Mem.Index)
		} else {
			off := in.Mem.Imm
			if off >= 0 {
				w |= 1 << 23
			} else {
				off = -off
			}
			if off > 0xfff {
				return 0, fmt.Errorf("arm: encode: offset %d out of range in %s", in.Mem.Imm, in)
			}
			w |= uint32(off)
		}
		return w, nil
	case in.Op == B || in.Op == BL:
		w := cond | 5<<25
		if in.Op == BL {
			w |= 1 << 24
		}
		if in.Target < 0 || in.Target > 0xffffff {
			return 0, fmt.Errorf("arm: encode: branch target %d out of range", in.Target)
		}
		return w | uint32(in.Target), nil
	case in.Op == BX:
		return cond | 0x012fff10 | uint32(in.Rn), nil
	case in.Op == PUSH:
		// STMDB sp!, {...}: cond 100 P=1 U=0 S=0 W=1 L=0 Rn=sp
		return cond | 0x092d0000 | uint32(in.RegList), nil
	case in.Op == POP:
		// LDMIA sp!, {...}
		return cond | 0x08bd0000 | uint32(in.RegList), nil
	}
	return 0, fmt.Errorf("arm: encode: unhandled op %s", in.Op)
}

func encodeOp2(o Operand2) (uint32, error) {
	if o.IsImm {
		f, ok := EncodeImm(o.Imm)
		if !ok {
			return 0, fmt.Errorf("arm: encode: immediate %#x not encodable", o.Imm)
		}
		return 1<<25 | uint32(f), nil
	}
	return uint32(o.Shift.Amount)<<7 | uint32(o.Shift.Kind)<<5 | uint32(o.Reg), nil
}

// Decode inverts Encode for the modeled subset.
func Decode(w uint32) (Instr, error) {
	in := Instr{Cond: Cond(w >> 28)}
	switch {
	case w&0x0ffffff0 == 0x012fff10:
		in.Op = BX
		in.Rn = Reg(w & 0xf)
		return in, nil
	case w&0x0fff0000 == 0x092d0000:
		in.Op = PUSH
		in.RegList = uint16(w)
		return in, nil
	case w&0x0fff0000 == 0x08bd0000:
		in.Op = POP
		in.RegList = uint16(w)
		return in, nil
	case w>>25&7 == 5:
		if w>>24&1 == 1 {
			in.Op = BL
		} else {
			in.Op = B
		}
		in.Target = int32(w & 0xffffff)
		return in, nil
	case w>>26&3 == 1:
		if w>>20&1 == 1 {
			in.Op = LDR
		} else {
			in.Op = STR
		}
		if w>>22&1 == 1 {
			in.Op++ // LDR->LDRB, STR->STRB (see op order)
		}
		in.Mem.Base = Reg(w >> 16 & 0xf)
		in.Rd = Reg(w >> 12 & 0xf)
		if w>>25&1 == 1 {
			in.Mem.HasIndex = true
			in.Mem.NegIndex = w>>23&1 == 0
			in.Mem.Index = Reg(w & 0xf)
			in.Mem.Shift = Shift{Kind: ShiftKind(w >> 5 & 3), Amount: uint8(w >> 7 & 0x1f)}
		} else {
			off := int32(w & 0xfff)
			if w>>23&1 == 0 {
				off = -off
			}
			in.Mem.Imm = off
		}
		return in, nil
	case w&0x0fc000f0 == 0x90:
		if w>>21&1 == 1 {
			in.Op = MLA
		} else {
			in.Op = MUL
		}
		in.SetFlags = w>>20&1 == 1
		in.Rd = Reg(w >> 16 & 0xf)
		in.Ra = Reg(w >> 12 & 0xf)
		in.Op2 = RegOp2(Reg(w >> 8 & 0xf))
		in.Rn = Reg(w & 0xf)
		return in, nil
	case w>>26&3 == 0:
		in.Op = Op(w >> 21 & 0xf)
		in.SetFlags = w>>20&1 == 1
		in.Rn = Reg(w >> 16 & 0xf)
		in.Rd = Reg(w >> 12 & 0xf)
		if w>>25&1 == 1 {
			rot := w >> 8 & 0xf
			v := w & 0xff
			in.Op2 = ImmOp2(v>>(2*rot) | v<<(32-2*rot))
		} else {
			in.Op2 = Operand2{
				Reg:   Reg(w & 0xf),
				Shift: Shift{Kind: ShiftKind(w >> 5 & 3), Amount: uint8(w >> 7 & 0x1f)},
			}
		}
		if in.Op.IsCompare() {
			in.Rd = 0
		}
		return in, nil
	}
	return Instr{}, fmt.Errorf("arm: decode: unrecognized word %#08x", w)
}

// LoadImm returns a minimal instruction sequence that materializes v in rd,
// using mov/mvn when encodable and a mov+orr pair otherwise — the idiom
// the paper's Figure 4(b) shows for large ARM constants.
func LoadImm(rd Reg, v uint32) []Instr {
	if ImmEncodable(v) {
		return []Instr{{Op: MOV, Cond: AL, Rd: rd, Op2: ImmOp2(v)}}
	}
	if ImmEncodable(^v) {
		return []Instr{{Op: MVN, Cond: AL, Rd: rd, Op2: ImmOp2(^v)}}
	}
	// Split into two rotated-encodable halves. Any 32-bit value can be
	// covered by four byte-aligned chunks; try a greedy two-chunk split
	// first, then fall back to byte chunks.
	for shift := uint32(0); shift < 32; shift += 8 {
		lo := v & (0xff << shift)
		rest := v &^ (0xff << shift)
		if lo != 0 && ImmEncodable(lo) && ImmEncodable(rest) {
			return []Instr{
				{Op: MOV, Cond: AL, Rd: rd, Op2: ImmOp2(rest)},
				{Op: ORR, Cond: AL, Rd: rd, Rn: rd, Op2: ImmOp2(lo)},
			}
		}
	}
	out := []Instr{{Op: MOV, Cond: AL, Rd: rd, Op2: ImmOp2(v & 0xff)}}
	for shift := uint32(8); shift < 32; shift += 8 {
		chunk := v & (0xff << shift)
		if chunk != 0 {
			out = append(out, Instr{Op: ORR, Cond: AL, Rd: rd, Rn: rd, Op2: ImmOp2(chunk)})
		}
	}
	return out
}
